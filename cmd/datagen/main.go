// Command datagen writes the synthetic evaluation networks (YNG, MID, UNT,
// CRE) to disk as edge lists, with module ground truth as comments in a
// sidecar file.
//
// Usage:
//
//	datagen -dir data          # writes data/YNG.edges, data/YNG.modules, ...
//	datagen -dir data -only CRE
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"parsample/internal/datasets"
	"parsample/internal/graph"
)

func main() {
	dir := flag.String("dir", "data", "output directory")
	only := flag.String("only", "", "write a single dataset (YNG|MID|UNT|CRE)")
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatalf("mkdir: %v", err)
	}
	for _, ds := range datasets.All() {
		if *only != "" && ds.Name != *only {
			continue
		}
		edgePath := filepath.Join(*dir, ds.Name+".edges")
		if err := writeEdges(edgePath, ds.G); err != nil {
			fatalf("%s: %v", edgePath, err)
		}
		modPath := filepath.Join(*dir, ds.Name+".modules")
		if err := writeModules(modPath, ds.Modules); err != nil {
			fatalf("%s: %v", modPath, err)
		}
		fmt.Printf("%s: %d vertices, %d edges, %d modules -> %s, %s\n",
			ds.Name, ds.G.N(), ds.G.M(), len(ds.Modules), edgePath, modPath)
	}
}

func writeEdges(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return graph.WriteEdgeList(f, g)
}

func writeModules(path string, modules [][]int32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for i, mod := range modules {
		fmt.Fprintf(f, "module %d:", i)
		for _, v := range mod {
			fmt.Fprintf(f, " %d", v)
		}
		fmt.Fprintln(f)
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "datagen: "+format+"\n", args...)
	os.Exit(1)
}
