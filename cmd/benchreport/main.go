// Command benchreport emits the machine-readable perf snapshot for this
// revision (BENCH_*.json): the correlation front end on the two reference
// matrix shapes in both arena precisions, the batched-sweep overhead ratio,
// the HTTP serving tier cold vs warm, the snapshot codec, and the
// warm-restart path (a fresh process serving the 4096×100 reference request
// from disk snapshots instead of recomputing — acceptance: ≥ 10× faster
// than the cold recompute), and the distributed sampling tier: the four
// parallel samplers run for real across loopback worker processes at
// P ∈ {1,2,4,8}, with measured wall-clock speedup next to the calibrated
// cost model's prediction and the per-point model error (acceptance: every
// distributed edge set is byte-identical to the simulator's). CI runs it on
// every push so the perf trajectory is comparable PR-over-PR; the
// checked-in BENCH_10.json is the snapshot from the revision that
// introduced the TCP transport tier.
//
//	go run ./cmd/benchreport -o BENCH_10.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"testing"

	"parsample"
	"parsample/internal/experiments"
	"parsample/internal/expr"
	"parsample/internal/server"
	"parsample/internal/snapshot"
	"parsample/internal/transport"
)

// report is the BENCH_*.json schema. NsPerOp keys are stable across PRs;
// new revisions add keys, never rename them.
type report struct {
	ID        string             `json:"id"`
	Go        string             `json:"go"`
	GOOS      string             `json:"goos"`
	GOARCH    string             `json:"goarch"`
	KernelISA string             `json:"kernel_isa"`
	NsPerOp   map[string]float64 `json:"ns_per_op"`
	// BatchedSweepRatioK4 is batched(k=4 specs) / single-spec wall time on
	// 2048×64 — the cross-request coalescing overhead (acceptance: <1.3).
	BatchedSweepRatioK4 float64 `json:"batched_sweep_ratio_k4"`
	// WarmRestartSpeedup is cold-recompute / warm-restart-from-disk wall
	// time for the 4096×100 reference request served by a fresh process
	// (acceptance: ≥ 10).
	WarmRestartSpeedup float64 `json:"warm_restart_speedup"`
	// DistModel is the loopback-calibrated cost model the distributed
	// predictions were made with (seconds per op / per-message overhead /
	// per byte) — machine-dependent, recorded so the predictions are
	// reproducible.
	DistModel map[string]float64 `json:"dist_model"`
	// Distributed is the measured Figure-10: per parallel sampler, the
	// loopback cluster's wall-clock speedup at each rank count next to the
	// cost model's prediction. Match is asserted (the run fails on a
	// mismatch), so every point here is from a byte-identical edge set.
	Distributed map[string][]distPoint `json:"distributed"`
}

// distPoint is one measured-vs-modeled point of the distributed study.
type distPoint struct {
	P               int     `json:"p"`
	MeasuredSeconds float64 `json:"measured_seconds"`
	ModeledSeconds  float64 `json:"modeled_seconds"`
	MeasuredSpeedup float64 `json:"measured_speedup"`
	ModeledSpeedup  float64 `json:"modeled_speedup"`
	Efficiency      float64 `json:"efficiency"`
	ModelErrorPct   float64 `json:"model_error_pct"`
	EdgesKept       int     `json:"edges_kept"`
}

// serverBody mirrors the serving tier's bench request: a synthesized matrix
// with planted modules so every pipeline stage runs.
const serverBody = `{
	"network": {"synthesis": {"genes": 192, "samples": 24, "modules": 4, "moduleSize": 8, "seed": 7}},
	"filter": {"algorithm": "chordal-nocomm", "ordering": "HD", "p": 4, "seed": 3}
}`

func main() {
	out := flag.String("o", "BENCH_10.json", "output path ('-' for stdout)")
	flag.Parse()

	r := report{
		ID:        "BENCH_10",
		Go:        runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		KernelISA: expr.KernelISA(),
		NsPerOp:   map[string]float64{},
	}

	for _, shape := range []struct{ genes, samples int }{{2048, 64}, {4096, 100}} {
		syn, err := expr.Synthesize(expr.SyntheticSpec{
			Genes: shape.genes, Samples: shape.samples,
			Modules: 16, ModuleSize: 12, Noise: 0.1, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, prec := range []expr.Precision{expr.Float64, expr.Float32} {
			opts := expr.DefaultNetworkOptions()
			opts.Precision = prec
			name := fmt.Sprintf("build_network/pearson/%s/%dx%d", prec, shape.genes, shape.samples)
			r.NsPerOp[name] = nsPerOp(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if g := expr.BuildNetwork(syn.M, opts); g.M() == 0 {
						b.Fatal("empty network")
					}
				}
			})
		}
		if shape.genes == 2048 {
			single, batched := batchedSweep(syn)
			r.NsPerOp["batched_sweep/2048x64/k=1"] = single
			r.NsPerOp["batched_sweep/2048x64/k=4"] = batched
			r.BatchedSweepRatioK4 = batched / single

			enc, dec := snapshotCodec(syn)
			r.NsPerOp["snapshot/encode_graph/2048x64"] = enc
			r.NsPerOp["snapshot/decode_graph/2048x64"] = dec
		}
	}

	cold, warm := serverColdWarm()
	r.NsPerOp["server/pipeline/cold"] = cold
	r.NsPerOp["server/pipeline/warm"] = warm

	coldBig, diskBig := warmRestart()
	r.NsPerOp["server/pipeline/cold_recompute/4096x100"] = coldBig
	r.NsPerOp["server/pipeline/warm_restart_disk/4096x100"] = diskBig
	r.WarmRestartSpeedup = coldBig / diskBig

	distModel, dist := distributedStudy()
	r.DistModel = distModel
	r.Distributed = dist

	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%s, %s)\n", *out, r.KernelISA, r.Go)
}

// distributedStudy runs the measured Figure-10: in-process loopback
// workers host the non-zero ranks, the coordinator runs rank 0, and every
// distributed edge set is checked byte-identical against the simulator's
// before a point is recorded.
func distributedStudy() (map[string]float64, map[string][]distPoint) {
	n := 0
	for _, p := range experiments.DistProcessors {
		if p-1 > n {
			n = p - 1
		}
	}
	addrs, stop, err := experiments.StartLocalWorkers(n)
	if err != nil {
		log.Fatal(err)
	}
	defer stop()
	cl, err := transport.Dial("127.0.0.1:0", addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	rows, model, err := experiments.FigDist(context.Background(), cl, experiments.DistGraph(), experiments.DistProcessors)
	if err != nil {
		log.Fatal(err)
	}
	dist := map[string][]distPoint{}
	for _, row := range rows {
		dist[row.Algorithm] = append(dist[row.Algorithm], distPoint{
			P:               row.P,
			MeasuredSeconds: row.MeasuredSeconds,
			ModeledSeconds:  row.ModeledSeconds,
			MeasuredSpeedup: row.MeasuredSpeedup,
			ModeledSpeedup:  row.ModeledSpeedup,
			Efficiency:      row.Efficiency,
			ModelErrorPct:   row.ModelErrorPct,
			EdgesKept:       row.EdgesKept,
		})
	}
	return map[string]float64{
		"seconds_per_op":   model.SecondsPerOp,
		"overhead_seconds": model.OverheadSeconds,
		"seconds_per_byte": model.SecondsPerByte,
	}, dist
}

// benchServer boots the serving tier with an effectively unmetered
// admission gate: these benches measure pipeline serving latency, and at
// benchmark iteration counts the per-client fair-share limiter would
// otherwise 429 the loop.
func benchServer(p *parsample.Pipeline) *httptest.Server {
	return httptest.NewServer(server.New(server.Config{
		Pipeline:         p,
		CapacityUnits:    1e12,
		ClientRateUnits:  1e12,
		ClientBurstUnits: 1e12,
	}))
}

// nsPerOp runs f under the testing benchmark driver and returns its ns/op.
func nsPerOp(f func(b *testing.B)) float64 {
	res := testing.Benchmark(f)
	if res.N == 0 {
		log.Fatal("benchmark failed (zero iterations)")
	}
	return float64(res.NsPerOp())
}

// batchedSweep times one batched pass over k=4 admission specs against the
// single-spec pass it generalizes, on the 2048×64 matrix.
func batchedSweep(syn *expr.SyntheticResult) (single, batched float64) {
	base := expr.DefaultNetworkOptions()
	specs := []expr.SweepSpec{
		{MinAbsR: 0.95, MaxP: 0.0005},
		{MinAbsR: 0.90, MaxP: 0.001},
		{MinAbsR: 0.85, MaxP: 0.005},
		{MinAbsR: 0.80, MaxP: 0.01, Negative: true},
	}
	run := func(k int) float64 {
		return nsPerOp(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gs, err := expr.BatchBuildNetworksContext(context.Background(), syn.M, base, specs[:k])
				if err != nil {
					b.Fatal(err)
				}
				if gs[0].M() == 0 {
					b.Fatal("empty network")
				}
			}
		})
	}
	return run(1), run(4)
}

// snapshotCodec times the disk tier's CSR graph codec on the 2048×64
// reference network: encode is what the write-behind goroutine pays per
// spill, decode is the integrity-verified load a warm restart pays instead
// of a kernel.
func snapshotCodec(syn *expr.SyntheticResult) (encNs, decNs float64) {
	g := expr.BuildNetwork(syn.M, expr.DefaultNetworkOptions())
	if g.M() == 0 {
		log.Fatal("empty network for snapshot codec bench")
	}
	blob := snapshot.EncodeGraph(g)
	encNs = nsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(snapshot.EncodeGraph(g)) == 0 {
				b.Fatal("empty snapshot")
			}
		}
	})
	decNs = nsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := snapshot.DecodeGraph(blob); err != nil {
				b.Fatal(err)
			}
		}
	})
	return encNs, decNs
}

// restartBody is the warm-restart reference request: the 4096×100 synthesis
// shape from the kernel benches, driven through the full serving tier.
const restartBody = `{
	"network": {"synthesis": {"genes": 4096, "samples": 100, "modules": 16, "moduleSize": 12, "seed": 1}},
	"filter": {"algorithm": "chordal-nocomm", "ordering": "HD", "p": 4, "seed": 3}
}`

// warmRestart measures the tentpole: cold boots a fresh pipeline per request
// with no cache directory (every kernel runs), restart boots a fresh
// pipeline per request over a primed cache directory (every stage loads from
// verified snapshots). Each restart response is checked to actually come
// from the disk tier and to be byte-identical to the cold one.
func warmRestart() (coldNs, diskNs float64) {
	dir, err := os.MkdirTemp("", "benchreport-cache-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	fire := func(b *testing.B, url, wantCache string) []byte {
		resp, err := http.Post(url+"/v1/pipeline", "application/json", strings.NewReader(restartBody))
		if err != nil {
			b.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		if c := resp.Header.Get(server.CacheHeader); wantCache != "" && c != wantCache {
			b.Fatalf("cache header %q, want %q", c, wantCache)
		}
		return body
	}

	var coldBody []byte
	coldNs = nsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			p := parsample.New()
			ts := benchServer(p)
			b.StartTimer()
			coldBody = fire(b, ts.URL, "miss")
			b.StopTimer()
			ts.Close()
			p.Close()
			b.StartTimer()
		}
	})

	// Prime the cache directory once; Close drains the write-behind queue so
	// every artifact is published before the restart timings start.
	prime := parsample.New(parsample.WithCacheDir(dir))
	tsP := benchServer(prime)
	resp, err := http.Post(tsP.URL+"/v1/pipeline", "application/json", strings.NewReader(restartBody))
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("prime status %d", resp.StatusCode)
	}
	tsP.Close()
	prime.Close()

	diskNs = nsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			p := parsample.New(parsample.WithCacheDir(dir))
			ts := benchServer(p)
			b.StartTimer()
			body := fire(b, ts.URL, "disk")
			b.StopTimer()
			if !bytes.Equal(body, coldBody) {
				b.Fatal("warm-restart response differs from cold bytes")
			}
			ts.Close()
			p.Close()
			b.StartTimer()
		}
	})
	return coldNs, diskNs
}

// serverColdWarm measures the HTTP serving tier end to end: cold boots a
// fresh pipeline per request (every stage computes), warm reuses one
// pipeline so every stage is an artifact-store hit.
func serverColdWarm() (cold, warm float64) {
	post := func(b *testing.B, url string) {
		resp, err := http.Post(url+"/v1/pipeline", "application/json", strings.NewReader(serverBody))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	cold = nsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ts := benchServer(parsample.New())
			b.StartTimer()
			post(b, ts.URL)
			b.StopTimer()
			ts.Close()
			b.StartTimer()
		}
	})
	warm = nsPerOp(func(b *testing.B) {
		ts := benchServer(parsample.New())
		defer ts.Close()
		post(b, ts.URL) // prime the artifact store outside the timer
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, ts.URL)
		}
	})
	return cold, warm
}
