// Command benchreport emits the machine-readable perf snapshot for this
// revision (BENCH_*.json): the correlation front end on the two reference
// matrix shapes in both arena precisions, the batched-sweep overhead ratio,
// and the HTTP serving tier cold vs warm. CI runs it on every push so the
// perf trajectory is comparable PR-over-PR; the checked-in BENCH_6.json is
// the snapshot from the revision that introduced the vectorized kernels.
//
//	go run ./cmd/benchreport -o BENCH_6.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"testing"

	"parsample"
	"parsample/internal/expr"
	"parsample/internal/server"
)

// report is the BENCH_*.json schema. NsPerOp keys are stable across PRs;
// new revisions add keys, never rename them.
type report struct {
	ID        string             `json:"id"`
	Go        string             `json:"go"`
	GOOS      string             `json:"goos"`
	GOARCH    string             `json:"goarch"`
	KernelISA string             `json:"kernel_isa"`
	NsPerOp   map[string]float64 `json:"ns_per_op"`
	// BatchedSweepRatioK4 is batched(k=4 specs) / single-spec wall time on
	// 2048×64 — the cross-request coalescing overhead (acceptance: <1.3).
	BatchedSweepRatioK4 float64 `json:"batched_sweep_ratio_k4"`
}

// serverBody mirrors the serving tier's bench request: a synthesized matrix
// with planted modules so every pipeline stage runs.
const serverBody = `{
	"network": {"synthesis": {"genes": 192, "samples": 24, "modules": 4, "moduleSize": 8, "seed": 7}},
	"filter": {"algorithm": "chordal-nocomm", "ordering": "HD", "p": 4, "seed": 3}
}`

func main() {
	out := flag.String("o", "BENCH_6.json", "output path ('-' for stdout)")
	flag.Parse()

	r := report{
		ID:        "BENCH_6",
		Go:        runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		KernelISA: expr.KernelISA(),
		NsPerOp:   map[string]float64{},
	}

	for _, shape := range []struct{ genes, samples int }{{2048, 64}, {4096, 100}} {
		syn, err := expr.Synthesize(expr.SyntheticSpec{
			Genes: shape.genes, Samples: shape.samples,
			Modules: 16, ModuleSize: 12, Noise: 0.1, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, prec := range []expr.Precision{expr.Float64, expr.Float32} {
			opts := expr.DefaultNetworkOptions()
			opts.Precision = prec
			name := fmt.Sprintf("build_network/pearson/%s/%dx%d", prec, shape.genes, shape.samples)
			r.NsPerOp[name] = nsPerOp(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if g := expr.BuildNetwork(syn.M, opts); g.M() == 0 {
						b.Fatal("empty network")
					}
				}
			})
		}
		if shape.genes == 2048 {
			single, batched := batchedSweep(syn)
			r.NsPerOp["batched_sweep/2048x64/k=1"] = single
			r.NsPerOp["batched_sweep/2048x64/k=4"] = batched
			r.BatchedSweepRatioK4 = batched / single
		}
	}

	cold, warm := serverColdWarm()
	r.NsPerOp["server/pipeline/cold"] = cold
	r.NsPerOp["server/pipeline/warm"] = warm

	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%s, %s)\n", *out, r.KernelISA, r.Go)
}

// nsPerOp runs f under the testing benchmark driver and returns its ns/op.
func nsPerOp(f func(b *testing.B)) float64 {
	res := testing.Benchmark(f)
	if res.N == 0 {
		log.Fatal("benchmark failed (zero iterations)")
	}
	return float64(res.NsPerOp())
}

// batchedSweep times one batched pass over k=4 admission specs against the
// single-spec pass it generalizes, on the 2048×64 matrix.
func batchedSweep(syn *expr.SyntheticResult) (single, batched float64) {
	base := expr.DefaultNetworkOptions()
	specs := []expr.SweepSpec{
		{MinAbsR: 0.95, MaxP: 0.0005},
		{MinAbsR: 0.90, MaxP: 0.001},
		{MinAbsR: 0.85, MaxP: 0.005},
		{MinAbsR: 0.80, MaxP: 0.01, Negative: true},
	}
	run := func(k int) float64 {
		return nsPerOp(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gs, err := expr.BatchBuildNetworksContext(context.Background(), syn.M, base, specs[:k])
				if err != nil {
					b.Fatal(err)
				}
				if gs[0].M() == 0 {
					b.Fatal("empty network")
				}
			}
		})
	}
	return run(1), run(4)
}

// serverColdWarm measures the HTTP serving tier end to end: cold boots a
// fresh pipeline per request (every stage computes), warm reuses one
// pipeline so every stage is an artifact-store hit.
func serverColdWarm() (cold, warm float64) {
	post := func(b *testing.B, url string) {
		resp, err := http.Post(url+"/v1/pipeline", "application/json", strings.NewReader(serverBody))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	cold = nsPerOp(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ts := httptest.NewServer(server.New(server.Config{Pipeline: parsample.New()}))
			b.StartTimer()
			post(b, ts.URL)
			b.StopTimer()
			ts.Close()
			b.StartTimer()
		}
	})
	warm = nsPerOp(func(b *testing.B) {
		ts := httptest.NewServer(server.New(server.Config{Pipeline: parsample.New()}))
		defer ts.Close()
		post(b, ts.URL) // prime the artifact store outside the timer
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, ts.URL)
		}
	})
	return cold, warm
}
