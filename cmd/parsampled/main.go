// Command parsampled is the parsample HTTP daemon: the v1 service API
// (POST /v1/pipeline, async /v1/jobs with SSE progress, /healthz,
// /statsz) served over one shared memoizing pipeline engine, so identical
// concurrent requests compute each stage once and warm repeats are served
// from cache.
//
// Usage:
//
//	parsampled [-addr :8080] [-cache-mb 256] [-workers N]
//	           [-datasets YNG,CRE] [-max-body-mb 64]
//
// Quick check against a running daemon:
//
//	curl -s localhost:8080/healthz
//	parsample request -addr http://localhost:8080 -in request.json
//
// See DESIGN.md §6 for the schema and endpoint semantics.
package main

import (
	"fmt"
	"os"

	"parsample/internal/server"
)

func main() {
	if err := server.RunDaemon("parsampled", os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "parsampled: %v\n", err)
		os.Exit(1)
	}
}
