// Command netstat prints structural statistics of a network edge list:
// size, density, degree distribution, components, triangles, chordality,
// and the most central vertices (degree / closeness / betweenness), the
// measures the paper's background ties to gene essentiality.
//
// Usage:
//
//	netstat [-in net.txt] [-top 10] [-betweenness]
//
// Input loading goes through the service API's network-source grammar
// (api.EdgeListFile → parsample.Pipeline.NetworkFromSource), so netstat
// accepts exactly what the daemon accepts.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"parsample"
	"parsample/api"
	"parsample/internal/centrality"
	"parsample/internal/chordal"
	"parsample/internal/graph"
)

func main() {
	var (
		inPath  = flag.String("in", "", "input edge list (default stdin)")
		topK    = flag.Int("top", 10, "how many central vertices to list")
		between = flag.Bool("betweenness", false, "also compute betweenness (O(nm), slow on big nets)")
	)
	flag.Parse()

	src, err := api.EdgeListFile(*inPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "netstat: %v\n", err)
		os.Exit(1)
	}
	g, err := parsample.New().NetworkFromSource(context.Background(), src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "netstat: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("vertices:    %d\n", g.N())
	fmt.Printf("edges:       %d\n", g.M())
	fmt.Printf("density:     %.6f\n", graph.Density(g))
	fmt.Printf("max degree:  %d\n", g.MaxDegree())
	fmt.Printf("avg degree:  %.2f\n", avgDegree(g))
	comps := graph.ConnectedComponents(g)
	fmt.Printf("components:  %d (largest %d vertices)\n", len(comps), largest(comps))
	fmt.Printf("triangles:   %d\n", graph.CountTriangles(g))
	fmt.Printf("chordal:     %v\n", chordal.IsChordal(g))
	printDegreeHistogram(g)

	deg := centrality.Degree(g)
	printTop("degree", deg, *topK)
	clo := centrality.Closeness(g)
	printTop("closeness", clo, *topK)
	if *between {
		bc := centrality.Betweenness(g)
		printTop("betweenness", bc, *topK)
	}
}

func avgDegree(g *graph.Graph) float64 {
	if g.N() == 0 {
		return 0
	}
	return 2 * float64(g.M()) / float64(g.N())
}

func largest(comps [][]int32) int {
	if len(comps) == 0 {
		return 0
	}
	return len(comps[0])
}

func printDegreeHistogram(g *graph.Graph) {
	hist := map[int]int{}
	for v := 0; v < g.N(); v++ {
		hist[g.Degree(int32(v))]++
	}
	degs := make([]int, 0, len(hist))
	for d := range hist {
		degs = append(degs, d)
	}
	sort.Ints(degs)
	fmt.Println("degree histogram (degree: count):")
	shown := 0
	for _, d := range degs {
		fmt.Printf("  %4d: %d\n", d, hist[d])
		shown++
		if shown >= 12 && len(degs) > 14 {
			fmt.Printf("  ... %d more degree values up to %d\n", len(degs)-shown, degs[len(degs)-1])
			break
		}
	}
}

func printTop(name string, scores []float64, k int) {
	fmt.Printf("top %d by %s:\n", k, name)
	for _, v := range centrality.TopK(scores, k) {
		fmt.Printf("  v%-7d %.4f\n", v, scores[v])
	}
}
