package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"parsample/api"
	"parsample/internal/server"
)

// requestMain runs `parsample request`: POST an api.Request JSON file to a
// running daemon and print the response body. The request is validated
// locally first, so schema typos fail with a clear message before any
// network traffic.
func requestMain(args []string) {
	fs := flag.NewFlagSet("parsample request", flag.ExitOnError)
	var (
		addr    = fs.String("addr", "http://localhost:8080", "daemon base URL")
		inPath  = fs.String("in", "", "api.Request JSON file (default stdin)")
		timeout = fs.Duration("timeout", 10*time.Minute, "request timeout")
	)
	fs.Parse(args)

	body := io.Reader(os.Stdin)
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatalf("open request: %v", err)
		}
		defer f.Close()
		body = f
	}
	raw, err := io.ReadAll(body)
	if err != nil {
		fatalf("read request: %v", err)
	}
	req, err := api.UnmarshalRequest(raw)
	if err != nil {
		fatalf("%v", err)
	}
	if _, err := req.Normalized(); err != nil {
		fatalf("%v", err)
	}

	client := &http.Client{Timeout: *timeout}
	url := strings.TrimRight(*addr, "/") + "/v1/pipeline"
	resp, err := client.Post(url, "application/json", strings.NewReader(string(raw)))
	if err != nil {
		fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("read response: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "parsample: daemon returned %s\n%s", resp.Status, out)
		os.Exit(1)
	}
	if c := resp.Header.Get(server.CacheHeader); c != "" {
		fmt.Fprintf(os.Stderr, "cache: %s\n", c)
	}
	os.Stdout.Write(out)
}
