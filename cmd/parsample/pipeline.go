package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"

	"parsample"
	"parsample/internal/expr"
	"parsample/internal/ontology"
)

// pipelineMain runs `parsample pipeline`: one end-to-end run on the engine
// with per-stage timings.
func pipelineMain(args []string) {
	fs := flag.NewFlagSet("parsample pipeline", flag.ExitOnError)
	var (
		inPath    = fs.String("in", "", "input edge list (default stdin unless -synth)")
		synth     = fs.String("synth", "", "synthesize a GENESxSAMPLES expression matrix (e.g. 2048x64) instead of reading a network")
		modules   = fs.Int("modules", 16, "planted co-expression modules (-synth)")
		modSize   = fs.Int("modsize", 12, "genes per planted module (-synth)")
		noise     = fs.Float64("noise", 0.1, "within-module noise std-dev (-synth)")
		algName   = fs.String("alg", "chordal-nocomm", "algorithm: chordal-seq | chordal-comm | chordal-nocomm | randomwalk-seq | randomwalk-par | forestfire-seq | forestfire-par")
		orderName = fs.String("order", "NO", "vertex ordering: NO | HD | LD | RCM | RAND")
		p         = fs.Int("p", 1, "number of simulated processors")
		seed      = fs.Int64("seed", 1, "random seed")
		outPath   = fs.String("out", "", "write the filtered edge list here")
		top       = fs.Int("top", 5, "clusters to print")
	)
	fs.Parse(args)

	alg, ok := parsample.ParseAlgorithm(*algName)
	if !ok {
		fatalf("unknown algorithm %q", *algName)
	}
	ord, ok := parsample.ParseOrdering(*orderName)
	if !ok {
		fatalf("unknown ordering %q", *orderName)
	}

	in := parsample.PipelineInput{
		Filter: parsample.FilterOptions{Algorithm: alg, Ordering: ord, P: *p, Seed: *seed},
	}
	switch {
	case *synth != "":
		var genes, samples int
		if _, err := fmt.Sscanf(*synth, "%dx%d", &genes, &samples); err != nil {
			fatalf("bad -synth %q (want GENESxSAMPLES, e.g. 2048x64)", *synth)
		}
		syn, err := expr.Synthesize(expr.SyntheticSpec{
			Genes: genes, Samples: samples,
			Modules: *modules, ModuleSize: *modSize, Noise: *noise, Seed: *seed,
		})
		if err != nil {
			fatalf("synthesize: %v", err)
		}
		// A matching ontology over the planted modules, so the scoring stage
		// has ground truth to work against (mirrors internal/datasets).
		dag := ontology.Generate(ontology.GenerateSpec{Depth: 10, Branch: 3, Seed: *seed + 1})
		ann := ontology.AnnotateModules(dag, genes, syn.Modules, 6, *seed+2)
		in.Name = fmt.Sprintf("synth:%s:m%d:s%d:n%g:seed%d", *synth, *modules, *modSize, *noise, *seed)
		in.Matrix = syn.M
		in.Network = parsample.DefaultNetworkOptions()
		in.DAG = dag
		in.Ann = ann
	default:
		r := os.Stdin
		name := "stdin"
		if *inPath != "" {
			f, err := os.Open(*inPath)
			if err != nil {
				fatalf("open input: %v", err)
			}
			defer f.Close()
			r = f
			name = *inPath
		}
		g, err := parsample.ReadNetwork(r)
		if err != nil {
			fatalf("read network: %v", err)
		}
		in.Name = name
		in.Graph = g
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := parsample.RunPipeline(ctx, in)
	if err != nil {
		fatalf("pipeline: %v", err)
	}

	fmt.Printf("network:   %d vertices, %d edges\n", res.Network.N(), res.Network.M())
	fmt.Printf("filtered:  %d edges (%.1f%%) via %s/%s P=%d\n",
		res.Filtered.M(), 100*float64(res.Filtered.M())/float64(max(1, res.Network.M())),
		*algName, *orderName, *p)
	fmt.Printf("clusters:  %d\n", len(res.Clusters))
	if res.Scored != nil {
		scored := append([]parsample.ScoredCluster(nil), res.Scored...)
		sort.SliceStable(scored, func(i, j int) bool { return scored[i].Score.AEES > scored[j].Score.AEES })
		for i, sc := range scored {
			if i >= *top {
				break
			}
			fmt.Printf("  cluster %2d: %3d vertices, %4d edges, MCODE %.2f, AEES %.2f\n",
				sc.Cluster.ID, len(sc.Cluster.Vertices), sc.Cluster.Edges, sc.Cluster.Score, sc.Score.AEES)
		}
	} else {
		for i, c := range res.Clusters {
			if i >= *top {
				break
			}
			fmt.Printf("  cluster %2d: %3d vertices, %4d edges, MCODE %.2f\n",
				c.ID, len(c.Vertices), c.Edges, c.Score)
		}
	}

	fmt.Println("stage timings:")
	for _, t := range res.Timings {
		fmt.Printf("  %-8s %-28s %-9s %10.3fms\n",
			t.Stage, t.Variant, t.Source, float64(t.Duration.Microseconds())/1000)
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatalf("create output: %v", err)
		}
		defer f.Close()
		if err := parsample.WriteNetwork(f, res.Filtered); err != nil {
			fatalf("write network: %v", err)
		}
	}
}
