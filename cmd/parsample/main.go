// Command parsample filters a network edge list with one of the paper's
// sampling algorithms and writes the sampled edge list.
//
// Usage:
//
//	parsample -alg chordal-nocomm -order HD -p 8 [-seed 1] [-in net.txt] [-out filtered.txt] [-stats]
//
// With no -in/-out it reads stdin and writes stdout. -stats prints sampling
// telemetry (edges kept, border edges, duplicates, per-rank operations) to
// stderr.
//
// Subcommands:
//
//	parsample pipeline ...   one end-to-end run on the pipeline engine, with
//	                         per-stage timings (see `parsample pipeline -h`)
//	parsample serve ...      the HTTP daemon (alias of cmd/parsampled)
//	parsample request ...    POST an api.Request JSON file to a daemon
//
// The pipeline subcommand executes a full end-to-end run on the pipeline
// engine — network (from an edge list, or built from a synthesized
// expression matrix) → ordering → filter → MCODE clusters → AEES scores —
// and prints per-stage timings:
//
//	parsample pipeline -in net.txt -alg chordal-nocomm -order HD -p 8
//	parsample pipeline -synth 2048x64 -modules 16 -modsize 12
//
// Synthesized runs plant co-expression modules, generate a matching
// ontology, and therefore include the scoring stage; edge-list runs stop at
// clustering (no ontology). Ctrl-C cancels the run mid-kernel.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"parsample"
	"parsample/internal/server"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "pipeline":
			pipelineMain(os.Args[2:])
			return
		case "serve":
			if err := server.RunDaemon("parsample serve", os.Args[2:]); err != nil {
				fatalf("serve: %v", err)
			}
			return
		case "request":
			requestMain(os.Args[2:])
			return
		}
	}
	var (
		algName   = flag.String("alg", "chordal-nocomm", "algorithm: chordal-seq | chordal-comm | chordal-nocomm | randomwalk-seq | randomwalk-par | forestfire-seq | forestfire-par")
		orderName = flag.String("order", "NO", "vertex ordering: NO | HD | LD | RCM | RAND")
		p         = flag.Int("p", 1, "number of simulated processors")
		seed      = flag.Int64("seed", 1, "random seed")
		inPath    = flag.String("in", "", "input edge list (default stdin)")
		outPath   = flag.String("out", "", "output edge list (default stdout)")
		stats     = flag.Bool("stats", false, "print sampling statistics to stderr")
	)
	flag.Parse()

	alg, ok := parsample.ParseAlgorithm(*algName)
	if !ok {
		fatalf("unknown algorithm %q", *algName)
	}
	ord, ok := parsample.ParseOrdering(*orderName)
	if !ok {
		fatalf("unknown ordering %q", *orderName)
	}

	in := io.Reader(os.Stdin)
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatalf("open input: %v", err)
		}
		defer f.Close()
		in = f
	}
	g, err := parsample.ReadNetwork(in)
	if err != nil {
		fatalf("read network: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// The facade applies the documented seed contract: the ordering shuffle
	// and the samplers draw from decorrelated streams derived from -seed.
	res, err := parsample.FilterContext(ctx, g, parsample.FilterOptions{
		Algorithm: alg,
		Ordering:  ord,
		P:         *p,
		Seed:      *seed,
	})
	if err != nil {
		fatalf("sampling: %v", err)
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatalf("create output: %v", err)
		}
		defer f.Close()
		out = f
	}
	if err := parsample.WriteNetwork(out, res.Graph(g.N())); err != nil {
		fatalf("write network: %v", err)
	}

	if *stats {
		fmt.Fprintf(os.Stderr, "algorithm:     %s\n", res.Algorithm)
		fmt.Fprintf(os.Stderr, "input:         %d vertices, %d edges\n", g.N(), g.M())
		fmt.Fprintf(os.Stderr, "kept:          %d edges (%.1f%%)\n", res.Edges.Len(),
			100*float64(res.Edges.Len())/float64(max(1, g.M())))
		fmt.Fprintf(os.Stderr, "border edges:  %d (duplicated admissions: %d)\n",
			res.BorderEdges, res.DuplicateBorderEdges)
		fmt.Fprintf(os.Stderr, "ranks:         %d, bottleneck ops %d, messages %d, bytes %d\n",
			res.Stats.P, res.Stats.MaxRankOps(), res.Stats.Messages, res.Stats.Bytes)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "parsample: "+format+"\n", args...)
	os.Exit(1)
}
