// Command parsamplevet runs the parsample static-analysis suite
// (internal/analyzers): machine checks for the repo's determinism,
// cancellation, and cache-identity invariants.
//
// Usage:
//
//	go run ./cmd/parsamplevet ./...
//
// The binary is a go/analysis unitchecker: invoked with package patterns it
// re-executes itself through `go vet -vettool`, which handles package
// loading, export data, and build caching, and prints findings in
// file:line:col: message form. Invoked by go vet (with a *.cfg argument) it
// analyzes a single compilation unit.
//
// Findings are suppressed line-by-line with a mandatory reason:
//
//	//parsamplevet:ignore <analyzer> <reason>
//	//lint:ignore parsamplevet/<analyzer> <reason>
//
// See DESIGN.md §9 for the invariant catalog.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"parsample/internal/analyzers"
)

func main() {
	args := os.Args[1:]
	// go vet drives the tool with -flags (flag schema), -V=full (version
	// fingerprint for the build cache) or a unitchecker config file;
	// everything else is a human invocation with package patterns.
	for _, a := range args {
		if a == "-flags" || a == "-V=full" || strings.HasSuffix(a, ".cfg") {
			unitchecker.Main(analyzers.Suite()...) // never returns
		}
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "parsamplevet: %v\n", err)
		os.Exit(1)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "parsamplevet: %v\n", err)
		os.Exit(1)
	}
}
