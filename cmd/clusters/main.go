// Command clusters runs MCODE on a network edge list and prints the
// clusters; with an ontology and annotations it also scores each cluster's
// edge enrichment (AEES), replicating the paper's analysis stage on user
// data.
//
// Usage:
//
//	clusters -in net.txt [-minscore 3] [-minsize 4] [-fluff]
//	         [-dag go.obo.txt -ann gene2term.tsv] [-dot out.dot]
//
// The DAG file uses the format of internal/ontology.WriteDAG; annotations
// use WriteAnnotations ("gene<TAB>term" lines).
//
// The run is one api.Request with an inline edge-list source and the
// filter algorithm "none" — the same typed request the parsampled daemon
// serves — so the CLI and the service share one schema, one option
// vocabulary and one validation path.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"parsample"
	"parsample/api"
)

func main() {
	var (
		inPath   = flag.String("in", "", "input edge list (default stdin)")
		minScore = flag.Float64("minscore", 3.0, "minimum MCODE cluster score")
		minSize  = flag.Int("minsize", 4, "minimum cluster size")
		fluffOpt = flag.Bool("fluff", false, "enable MCODE fluff post-processing")
		dagPath  = flag.String("dag", "", "ontology DAG file (optional)")
		annPath  = flag.String("ann", "", "gene annotations file (requires -dag)")
		dotPath  = flag.String("dot", "", "write a DOT rendering with clusters highlighted")
	)
	flag.Parse()

	src, err := api.EdgeListFile(*inPath)
	if err != nil {
		fatalf("%v", err)
	}
	req := &api.Request{
		Network: src,
		Filter:  api.FilterSpec{Algorithm: api.AlgorithmNone},
		Cluster: api.ClusterSpec{MinScore: minScore, MinSize: minSize, Fluff: *fluffOpt},
	}
	if *dagPath != "" {
		if *annPath == "" {
			fatalf("-ann is required with -dag")
		}
		score, err := api.InlineOntologyFiles(*dagPath, *annPath)
		if err != nil {
			fatalf("%v", err)
		}
		req.Score = score
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	resp, err := parsample.New().Do(ctx, req)
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("network: %d vertices, %d edges; %d clusters (score >= %.1f, size >= %d)\n",
		resp.Network.Vertices, resp.Network.Edges, len(resp.Clusters), *minScore, *minSize)
	for i, c := range resp.Clusters {
		fmt.Printf("cluster %-3d size %-4d edges %-5d density %.2f score %.2f",
			c.ID, len(c.Vertices), c.Edges, c.Density, c.Score)
		if resp.Scores != nil {
			fmt.Printf("  AEES %.2f (dominant term %d)", resp.Scores[i].AEES, resp.Scores[i].DominantTerm)
		}
		fmt.Println()
		fmt.Printf("  vertices: %v\n", c.Vertices)
	}

	if *dotPath != "" {
		// The DOT rendering needs the host graph itself; parse the same
		// inline source the request ran on.
		g, err := parsample.ReadNetwork(strings.NewReader(src.EdgeList))
		if err != nil {
			fatalf("%v", err)
		}
		groups := make([][]int32, len(resp.Clusters))
		for i, c := range resp.Clusters {
			groups[i] = c.Vertices
		}
		f, err := os.Create(*dotPath)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		if err := parsample.WriteDOT(f, g, parsample.DOTOptions{Name: "clusters", Highlight: groups}); err != nil {
			fatalf("write dot: %v", err)
		}
		fmt.Printf("wrote %s\n", *dotPath)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "clusters: "+format+"\n", args...)
	os.Exit(1)
}
