// Command clusters runs MCODE on a network edge list and prints the
// clusters; with an ontology and annotations it also scores each cluster's
// edge enrichment (AEES), replicating the paper's analysis stage on user
// data.
//
// Usage:
//
//	clusters -in net.txt [-minscore 3] [-minsize 4] [-fluff]
//	         [-dag go.obo.txt -ann gene2term.tsv] [-dot out.dot]
//
// The DAG file uses the format of internal/ontology.WriteDAG; annotations
// use WriteAnnotations ("gene<TAB>term" lines).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"parsample/internal/analysis"
	"parsample/internal/graph"
	"parsample/internal/mcode"
	"parsample/internal/ontology"
)

func main() {
	var (
		inPath   = flag.String("in", "", "input edge list (default stdin)")
		minScore = flag.Float64("minscore", 3.0, "minimum MCODE cluster score")
		minSize  = flag.Int("minsize", 4, "minimum cluster size")
		fluffOpt = flag.Bool("fluff", false, "enable MCODE fluff post-processing")
		dagPath  = flag.String("dag", "", "ontology DAG file (optional)")
		annPath  = flag.String("ann", "", "gene annotations file (requires -dag)")
		dotPath  = flag.String("dot", "", "write a DOT rendering with clusters highlighted")
	)
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		in = f
	}
	g, err := graph.ReadEdgeList(in)
	if err != nil {
		fatalf("read network: %v", err)
	}

	params := mcode.Params{MinScore: *minScore, MinSize: *minSize, Haircut: true, Fluff: *fluffOpt}
	clusters := mcode.FindClusters(g, params)
	fmt.Printf("network: %d vertices, %d edges; %d clusters (score >= %.1f, size >= %d)\n",
		g.N(), g.M(), len(clusters), *minScore, *minSize)

	var scored []analysis.ScoredCluster
	if *dagPath != "" {
		if *annPath == "" {
			fatalf("-ann is required with -dag")
		}
		dag := mustDAG(*dagPath)
		ann := mustAnn(*annPath)
		if ann.NumGenes() < g.N() {
			fatalf("annotations cover %d genes but the network has %d", ann.NumGenes(), g.N())
		}
		scored = analysis.ScoreClusters(dag, ann, g, clusters)
	}

	for i, c := range clusters {
		fmt.Printf("cluster %-3d size %-4d edges %-5d density %.2f score %.2f",
			c.ID, len(c.Vertices), c.Edges, c.Density, c.Score)
		if scored != nil {
			fmt.Printf("  AEES %.2f (dominant term %d)", scored[i].Score.AEES, scored[i].Score.DominantTerm)
		}
		fmt.Println()
		fmt.Printf("  vertices: %v\n", c.Vertices)
	}

	if *dotPath != "" {
		groups := make([][]int32, len(clusters))
		for i, c := range clusters {
			groups[i] = c.Vertices
		}
		f, err := os.Create(*dotPath)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		if err := graph.WriteDOT(f, g, graph.DOTOptions{Name: "clusters", Highlight: groups}); err != nil {
			fatalf("write dot: %v", err)
		}
		fmt.Printf("wrote %s\n", *dotPath)
	}
}

func mustDAG(path string) *ontology.DAG {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	d, err := ontology.ReadDAG(f)
	if err != nil {
		fatalf("read DAG: %v", err)
	}
	return d
}

func mustAnn(path string) *ontology.Annotations {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	a, err := ontology.ReadAnnotations(f)
	if err != nil {
		fatalf("read annotations: %v", err)
	}
	return a
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "clusters: "+format+"\n", args...)
	os.Exit(1)
}
