// Command experiments regenerates the paper's tables and figures as text
// tables.
//
// Usage:
//
//	experiments -fig 4        # one figure (4,5,6,7,8,9,10,11)
//	experiments -fig rw       # the random-walk control result (Section IV.B)
//	experiments -fig dist     # measured Figure 10: real TCP ranks vs the model
//	experiments -fig all      # everything (several minutes)
//
// -fig dist runs the four parallel samplers distributed across worker
// processes (in-process loopback workers by default; point -workers at
// parsample-worker addresses for a real cluster) and prints measured
// wall-clock speedup next to the cost model's prediction. The run fails if
// any distributed edge set differs from the simulator's.
//
// Figures run on the shared pipeline engine, so a full sweep computes every
// shared filtered-network/cluster/score chain once. A failing figure is
// reported and the sweep continues with the next one; the exit status is
// nonzero if any figure failed. Ctrl-C cancels the in-flight figure
// mid-kernel through the engine's context plumbing.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"parsample/internal/experiments"
	"parsample/internal/transport"
)

// maxInt returns the largest element of a non-empty slice.
func maxInt(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 4|5|6|7|8|9|10|11|dist|rw|lostfound|cliques|hubs|border|corr|scaling|all")
	cacheStats := flag.Bool("cachestats", false, "print pipeline artifact-store statistics after the run")
	workers := flag.String("workers", "", "comma-separated parsample-worker addresses for -fig dist (empty: boot in-process workers)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var failed []string
	run := func(name string, fn func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		if ctx.Err() != nil {
			return // interrupted: skip the rest of the sweep
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: figure %s: %v\n", name, err)
			failed = append(failed, name)
		}
	}

	out := os.Stdout
	run("4", func() error {
		rows, err := experiments.Fig4(ctx)
		if err != nil {
			return err
		}
		experiments.Header(out, "Figure 4: AEES per cluster across orderings (YNG, MID)")
		experiments.WriteFig4(out, rows)
		return nil
	})
	run("5", func() error {
		pts, err := experiments.Fig5(ctx)
		if err != nil {
			return err
		}
		experiments.Header(out, "Figure 5: node/edge overlap, original vs sampled (UNT, CRE)")
		experiments.WriteOverlapPoints(out, pts)
		return nil
	})
	run("6", func() error {
		pts, err := experiments.Fig6(ctx)
		if err != nil {
			return err
		}
		experiments.Header(out, "Figure 6: node overlap vs AEES (all networks)")
		experiments.WriteOverlapPoints(out, pts)
		return nil
	})
	run("7", func() error {
		pts, err := experiments.Fig7(ctx)
		if err != nil {
			return err
		}
		experiments.Header(out, "Figure 7: edge overlap vs AEES (all networks)")
		experiments.WriteOverlapPoints(out, pts)
		return nil
	})
	run("8", func() error {
		rows, err := experiments.Fig8(ctx)
		if err != nil {
			return err
		}
		experiments.Header(out, "Figure 8: sensitivity/specificity of node vs edge overlap")
		experiments.WriteFig8(out, rows)
		return nil
	})
	run("9", func() error {
		r, err := experiments.Fig9(ctx)
		if err != nil {
			return err
		}
		experiments.Header(out, "Figure 9: filtering case study (AEES improvement)")
		experiments.WriteFig9(out, r)
		return nil
	})
	run("10", func() error {
		rows, err := experiments.Fig10(ctx)
		if err != nil {
			return err
		}
		experiments.Header(out, "Figure 10: scalability of the sampling algorithms (modeled cluster time)")
		experiments.WriteFig10(out, rows)
		return nil
	})
	run("dist", func() error {
		addrs := strings.Split(*workers, ",")
		if *workers == "" {
			var stop func()
			var err error
			addrs, stop, err = experiments.StartLocalWorkers(maxInt(experiments.DistProcessors) - 1)
			if err != nil {
				return err
			}
			defer stop()
		}
		cl, err := transport.Dial("127.0.0.1:0", addrs)
		if err != nil {
			return err
		}
		defer cl.Close()
		rows, model, err := experiments.FigDist(ctx, cl, experiments.DistGraph(), experiments.DistProcessors)
		if err != nil {
			return err
		}
		experiments.Header(out, "Figure 10 (measured): distributed TCP ranks, measured vs modeled speedup")
		fmt.Fprintf(out, "calibrated model: %.3gs/op, %.3gs/msg overhead, %.3gs/byte\n",
			model.SecondsPerOp, model.OverheadSeconds, model.SecondsPerByte)
		experiments.WriteFigDist(out, rows)
		return nil
	})
	run("11", func() error {
		ov, tops, err := experiments.Fig11(ctx)
		if err != nil {
			return err
		}
		experiments.Header(out, "Figure 11: CRE natural order, 1P vs 64P quality")
		experiments.WriteFig11(out, ov, tops)
		return nil
	})
	run("scaling", func() error {
		rows, err := experiments.Scaling(ctx, experiments.DefaultScalingConfig())
		if err != nil {
			return err
		}
		experiments.Header(out, "Scalability study: P=1..64 x orderings x algorithms (modeled cluster time)")
		experiments.WriteScaling(out, rows)
		return nil
	})
	run("rw", func() error {
		rows, err := experiments.RandomWalkClusters(ctx)
		if err != nil {
			return err
		}
		experiments.Header(out, "Section IV.B: random-walk control filter cluster counts")
		experiments.WriteRandomWalk(out, rows)
		return nil
	})
	run("hubs", func() error {
		rows, err := experiments.HubPreservation(ctx)
		if err != nil {
			return err
		}
		experiments.Header(out, "Extension: hub (centrality) preservation per filter")
		for _, r := range rows {
			fmt.Fprintf(out, "%-8s %-16s edges=%5d top50=%.2f degRank=%.2f cloRank=%.2f\n",
				r.Network, r.Algorithm, r.EdgesKept, r.Top50Kept, r.DegreeRank, r.ClosenessRk)
		}
		return nil
	})
	run("lostfound", func() error {
		rows, err := experiments.LostFound(ctx)
		if err != nil {
			return err
		}
		experiments.Header(out, "Section IV.A: lost and found clusters per network and ordering")
		experiments.WriteLostFound(out, rows)
		return nil
	})
	run("cliques", func() error {
		rows, err := experiments.CliqueRetentionStudy(ctx)
		if err != nil {
			return err
		}
		experiments.Header(out, "Hypothesis H0: maximal clique retention per filter (YNG)")
		for _, r := range rows {
			fmt.Fprintf(out, "%-8s %-16s edges=%5d clique-retention=%.2f\n",
				r.Network, r.Algorithm, r.EdgesKept, r.Retention)
		}
		return nil
	})
	run("corr", func() error {
		rows, err := experiments.CorrelationFrontEnd(ctx)
		if err != nil {
			return err
		}
		experiments.Header(out, "Extension: correlation front end (engine build + threshold cliff)")
		for _, r := range rows {
			fmt.Fprintf(out, "%-9s %4dx%-3d edges=%6d density=%.5f module-recall=%.2f build=%.3fs\n",
				r.Kind, r.Genes, r.Samples, r.Edges, r.Density, r.ModuleEdgeRecall, r.BuildSeconds)
		}
		pts, err := experiments.CorrelationCliff()
		if err != nil {
			return err
		}
		for _, p := range pts {
			fmt.Fprintf(out, "  |rho| >= %.2f  edges=%6d maxdeg=%4d\n", p.MinAbsR, p.Edges, p.MaxDegree)
		}
		return nil
	})
	run("border", func() error {
		rows, err := experiments.BorderRuleAblation(ctx)
		if err != nil {
			return err
		}
		experiments.Header(out, "Extension: border-admission ablation (triangle rule vs coin)")
		for _, r := range rows {
			fmt.Fprintf(out, "%-8s rule=%-8s P=%-3d edges=%6d module-edges-kept=%.2f\n",
				r.Network, r.Rule, r.P, r.EdgesKept, r.ModuleEdgesKept)
		}
		return nil
	})

	if *cacheStats {
		s := experiments.Engine().Stats()
		fmt.Fprintf(os.Stderr, "pipeline store: %d hits, %d misses, %d shared, %d evictions, %d entries, %.1f MiB used\n",
			s.Hits, s.Misses, s.Shared, s.Evictions, s.Entries, float64(s.BytesUsed)/(1<<20))
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "experiments: interrupted")
		os.Exit(130)
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d figure(s) failed: %s\n", len(failed), strings.Join(failed, ", "))
		os.Exit(1)
	}
}
