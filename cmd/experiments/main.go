// Command experiments regenerates the paper's tables and figures as text
// tables.
//
// Usage:
//
//	experiments -fig 4        # one figure (4,5,6,7,8,9,10,11)
//	experiments -fig rw       # the random-walk control result (Section IV.B)
//	experiments -fig all      # everything (several minutes)
package main

import (
	"flag"
	"fmt"
	"os"

	"parsample/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 4|5|6|7|8|9|10|11|rw|lostfound|cliques|hubs|border|corr|scaling|all")
	flag.Parse()

	run := func(name string, fn func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: figure %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	out := os.Stdout
	run("4", func() error {
		experiments.Header(out, "Figure 4: AEES per cluster across orderings (YNG, MID)")
		experiments.WriteFig4(out, experiments.Fig4())
		return nil
	})
	run("5", func() error {
		experiments.Header(out, "Figure 5: node/edge overlap, original vs sampled (UNT, CRE)")
		experiments.WriteOverlapPoints(out, experiments.Fig5())
		return nil
	})
	run("6", func() error {
		experiments.Header(out, "Figure 6: node overlap vs AEES (all networks)")
		experiments.WriteOverlapPoints(out, experiments.Fig6())
		return nil
	})
	run("7", func() error {
		experiments.Header(out, "Figure 7: edge overlap vs AEES (all networks)")
		experiments.WriteOverlapPoints(out, experiments.Fig7())
		return nil
	})
	run("8", func() error {
		experiments.Header(out, "Figure 8: sensitivity/specificity of node vs edge overlap")
		experiments.WriteFig8(out, experiments.Fig8())
		return nil
	})
	run("9", func() error {
		experiments.Header(out, "Figure 9: filtering case study (AEES improvement)")
		r, err := experiments.Fig9()
		if err != nil {
			return err
		}
		experiments.WriteFig9(out, r)
		return nil
	})
	run("10", func() error {
		experiments.Header(out, "Figure 10: scalability of the sampling algorithms (modeled cluster time)")
		rows, err := experiments.Fig10()
		if err != nil {
			return err
		}
		experiments.WriteFig10(out, rows)
		return nil
	})
	run("11", func() error {
		experiments.Header(out, "Figure 11: CRE natural order, 1P vs 64P quality")
		ov, tops, err := experiments.Fig11()
		if err != nil {
			return err
		}
		experiments.WriteFig11(out, ov, tops)
		return nil
	})
	run("scaling", func() error {
		experiments.Header(out, "Scalability study: P=1..64 x orderings x algorithms (modeled cluster time)")
		rows, err := experiments.Scaling(experiments.DefaultScalingConfig())
		if err != nil {
			return err
		}
		experiments.WriteScaling(out, rows)
		return nil
	})
	run("rw", func() error {
		experiments.Header(out, "Section IV.B: random-walk control filter cluster counts")
		rows, err := experiments.RandomWalkClusters()
		if err != nil {
			return err
		}
		experiments.WriteRandomWalk(out, rows)
		return nil
	})
	run("hubs", func() error {
		experiments.Header(out, "Extension: hub (centrality) preservation per filter")
		rows, err := experiments.HubPreservation()
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Fprintf(out, "%-8s %-16s edges=%5d top50=%.2f degRank=%.2f cloRank=%.2f\n",
				r.Network, r.Algorithm, r.EdgesKept, r.Top50Kept, r.DegreeRank, r.ClosenessRk)
		}
		return nil
	})
	run("lostfound", func() error {
		experiments.Header(out, "Section IV.A: lost and found clusters per network and ordering")
		experiments.WriteLostFound(out, experiments.LostFound())
		return nil
	})
	run("cliques", func() error {
		experiments.Header(out, "Hypothesis H0: maximal clique retention per filter (YNG)")
		rows, err := experiments.CliqueRetentionStudy()
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Fprintf(out, "%-8s %-16s edges=%5d clique-retention=%.2f\n",
				r.Network, r.Algorithm, r.EdgesKept, r.Retention)
		}
		return nil
	})
	run("corr", func() error {
		experiments.Header(out, "Extension: correlation front end (engine build + threshold cliff)")
		rows, err := experiments.CorrelationFrontEnd()
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Fprintf(out, "%-9s %4dx%-3d edges=%6d density=%.5f module-recall=%.2f build=%.3fs\n",
				r.Kind, r.Genes, r.Samples, r.Edges, r.Density, r.ModuleEdgeRecall, r.BuildSeconds)
		}
		pts, err := experiments.CorrelationCliff()
		if err != nil {
			return err
		}
		for _, p := range pts {
			fmt.Fprintf(out, "  |rho| >= %.2f  edges=%6d maxdeg=%4d\n", p.MinAbsR, p.Edges, p.MaxDegree)
		}
		return nil
	})
	run("border", func() error {
		experiments.Header(out, "Extension: border-admission ablation (triangle rule vs coin)")
		rows, err := experiments.BorderRuleAblation()
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Fprintf(out, "%-8s rule=%-8s P=%-3d edges=%6d module-edges-kept=%.2f\n",
				r.Network, r.Rule, r.P, r.EdgesKept, r.ModuleEdgesKept)
		}
		return nil
	})
}
