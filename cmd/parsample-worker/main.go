// Command parsample-worker hosts the non-zero ranks of distributed
// sampling jobs: one worker process is one seat in a parsample cluster. A
// coordinator (experiments -fig dist, or any transport.Cluster user) ships
// each worker its rank's graph shard over the control connection; the
// workers form the job's TCP mesh among themselves and run the same
// sampling kernels the mpisim backend drives, bit for bit.
//
// Usage:
//
//	parsample-worker [-listen 127.0.0.1:0] [-debug-addr :9090]
//	                 [-failpoints "transport.send=error;count=1"]
//
// The worker prints its listen address on startup (pass a fixed port to
// skip the scrape). -debug-addr serves /statsz (job and traffic counters
// as JSON) and /healthz. -failpoints arms fault-injection sites for drills
// (default: $PARSAMPLE_FAILPOINTS; testing only). SIGINT/SIGTERM drain:
// in-flight jobs abort with a structured error to their coordinator, and
// the process exits 0 once every connection is closed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parsample/internal/faultinject"
	"parsample/internal/transport"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "address to listen on for control and mesh connections")
	debugAddr := flag.String("debug-addr", "", "serve /statsz and /healthz on this address (empty: disabled)")
	failpts := flag.String("failpoints", os.Getenv("PARSAMPLE_FAILPOINTS"), "fault-injection spec, e.g. \"transport.send=error;count=1\" (default: $PARSAMPLE_FAILPOINTS; testing only)")
	flag.Parse()

	if err := run(*listen, *debugAddr, *failpts); err != nil {
		fmt.Fprintf(os.Stderr, "parsample-worker: %v\n", err)
		os.Exit(1)
	}
}

func run(listen, debugAddr, failpts string) error {
	if err := faultinject.Configure(failpts); err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	w, err := transport.NewWorker(listen)
	if err != nil {
		return err
	}
	fmt.Printf("parsample-worker: listening on %s\n", w.Addr())

	var debug *http.Server
	if debugAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/statsz", func(rw http.ResponseWriter, _ *http.Request) {
			rw.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(rw)
			enc.SetIndent("", "  ")
			enc.Encode(w.Stats())
		})
		mux.HandleFunc("/healthz", func(rw http.ResponseWriter, _ *http.Request) {
			fmt.Fprintln(rw, "ok")
		})
		ln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			w.Close()
			return fmt.Errorf("debug listen: %w", err)
		}
		fmt.Printf("parsample-worker: debug endpoints on http://%s/statsz\n", ln.Addr())
		debug = &http.Server{Handler: mux}
		go debug.Serve(ln)
	}

	err = w.Serve(ctx)
	if debug != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		debug.Shutdown(sctx)
		cancel()
	}
	if err != nil {
		return err
	}
	fmt.Println("parsample-worker: drained, shutting down")
	return nil
}
