module parsample

go 1.24
