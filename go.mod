module parsample

go 1.24

// Vendored from the Go distribution's cmd/vendor tree (same x/tools
// pseudo-version the toolchain itself builds vet from); no network fetch.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e
