// Package parsample is the public facade of the parallel adaptive sampling
// library, a reproduction of Cooper (Dempsey), Duraisamy, Bhowmick & Ali,
// "The Development of Parallel Adaptive Sampling Algorithms for Analyzing
// Biological Networks" (IPDPS Workshops 2012).
//
// The pipeline mirrors the paper:
//
//	expression matrix ─Pearson→ correlation network ─order→ chordal filter
//	  ─MCODE→ clusters ─GO edge enrichment→ AEES scores ─overlap→ validation
//
// Every network is a compressed-sparse-row (CSR) Graph: one flat int32
// neighbor arena plus per-vertex offsets, built exactly once by a Builder
// that sorts and deduplicates the staged edge list. The combinatorial
// kernels (DSW chordal extraction, MCODE, Bron–Kerbosch) run on bitset
// candidate/membership sets over that arena, and block partitions hand each
// simulated processor a contiguous arena slice — the layout the parallel
// and (future) sharded execution paths rely on.
//
// Quick use:
//
//	g, _ := parsample.ReadNetwork(f)
//	filtered, _ := parsample.FilterContext(ctx, g, parsample.FilterOptions{
//	        Algorithm: parsample.ChordalNoComm,
//	        Ordering:  parsample.HighDegree,
//	        P:         8,
//	})
//	clusters, _ := parsample.ClustersContext(ctx, filtered.Graph(g.N()), parsample.ClusterParams{})
//
// Networks built in memory go through NewBuilder:
//
//	b := parsample.NewBuilder(4)
//	b.AddEdge(0, 1)
//	b.AddEdge(1, 2)
//	g := b.Build() // sorted, deduplicated CSR
//
// End-to-end runs (matrix or network → filter → clusters → scores) go
// through RunPipeline, or through a reusable Pipeline (New, with functional
// options) whose memoizing artifact store serves many concurrent requests
// (see the Pipeline type and DESIGN.md §5). A Pipeline also executes the
// versioned wire-form api.Request/api.Response pairs of the service API
// (Pipeline.Do, DESIGN.md §6); cmd/parsampled serves that schema over
// HTTP.
//
// See the examples/ directory for full end-to-end programs and
// internal/experiments for the drivers that regenerate every figure of the
// paper's evaluation.
package parsample

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"parsample/internal/analysis"
	"parsample/internal/chordal"
	"parsample/internal/expr"
	"parsample/internal/graph"
	"parsample/internal/mcode"
	"parsample/internal/ontology"
	"parsample/internal/pipeline"
	"parsample/internal/sampling"
)

// Re-exported core types. (Aliases keep one set of concrete types across the
// library; the canonical definitions live in the internal packages.)
type (
	// Graph is a simple undirected network over dense int32 vertex ids.
	Graph = graph.Graph
	// Edge is a normalized undirected edge (U < V).
	Edge = graph.Edge
	// EdgeSet is a sparse set of undirected edges.
	EdgeSet = graph.EdgeSet
	// Bitset is a flat-word vertex set, the membership structure used by the
	// dense kernels.
	Bitset = graph.Bitset
	// Builder accumulates edges and emits an immutable CSR Graph.
	Builder = graph.Builder
	// Ordering selects a vertex processing order (Natural, HighDegree,
	// LowDegree, RCM, RandomOrder).
	Ordering = graph.Ordering
	// Algorithm selects a sampling filter.
	Algorithm = sampling.Algorithm
	// Result is the output of a sampling run, including parallel telemetry.
	Result = sampling.Result
	// Cluster is one MCODE complex.
	Cluster = mcode.Cluster
	// ScoredCluster couples a cluster with its GO edge-enrichment summary.
	ScoredCluster = analysis.ScoredCluster
	// Matrix is a genes × samples expression matrix.
	Matrix = expr.Matrix
	// NetworkOptions configures correlation-network construction (statistic,
	// thresholds, workers). Negative MinAbsR/MaxP select the paper defaults;
	// zero is honored literally — see expr.NetworkOptions.
	NetworkOptions = expr.NetworkOptions
	// CorrelationKind selects Pearson or Spearman correlation.
	CorrelationKind = expr.CorrelationKind
	// Precision selects the correlation sweep's arena width (Float64 or
	// Float32). A pure speed/memory knob: the float32 engine re-decides
	// near-threshold pairs in float64, so the network is byte-identical.
	Precision = expr.Precision
	// SweepPoint is one row of a correlation-threshold sweep.
	SweepPoint = expr.SweepPoint
	// DAG is a GO-like ontology.
	DAG = ontology.DAG
	// Annotations maps genes to ontology terms.
	Annotations = ontology.Annotations
	// ClusterParams configures MCODE clustering (the zero value selects the
	// paper's defaults in pipeline runs; see mcode.Params).
	ClusterParams = mcode.Params
	// PipelineStats is a snapshot of a Pipeline's artifact-store counters.
	PipelineStats = pipeline.StoreStats
)

// Orderings studied in the paper.
const (
	Natural     = graph.Natural
	HighDegree  = graph.HighDegree
	LowDegree   = graph.LowDegree
	RCM         = graph.RCM
	RandomOrder = graph.RandomOrder
)

// Correlation statistics for network construction.
const (
	// PearsonCorr is Pearson's product-moment correlation (the paper's
	// choice).
	PearsonCorr = expr.PearsonCorr
	// SpearmanCorr is Spearman rank correlation, robust to outliers and
	// monotone nonlinearity.
	SpearmanCorr = expr.SpearmanCorr
)

// Sweep-arena precisions for NetworkOptions.Precision.
const (
	// Float64 is the default double-precision sweep arena.
	Float64 = expr.Float64
	// Float32 halves arena bytes and doubles SIMD lanes; identical results.
	Float32 = expr.Float32
)

// Sampling algorithms.
const (
	// ChordalSeq is the sequential maximal chordal subgraph filter
	// (Dearing–Shier–Warner).
	ChordalSeq = sampling.ChordalSeq
	// ChordalComm is the earlier parallel chordal filter with border-edge
	// communication.
	ChordalComm = sampling.ChordalComm
	// ChordalNoComm is the paper's improved communication-free parallel
	// chordal filter.
	ChordalNoComm = sampling.ChordalNoComm
	// RandomWalkSeq is the sequential random-walk control filter.
	RandomWalkSeq = sampling.RandomWalkSeq
	// RandomWalkPar is the parallel random-walk control filter.
	RandomWalkPar = sampling.RandomWalkPar
)

// FilterOptions configures Filter.
type FilterOptions struct {
	// Algorithm selects the filter (default ChordalNoComm).
	Algorithm Algorithm
	// Ordering selects the vertex processing order (default Natural).
	Ordering Ordering
	// P is the number of simulated processors (default 1).
	P int
	// Seed drives randomized filters and RandomOrder.
	//
	// Determinism contract: a Filter run is a pure function of
	// (graph, Algorithm, Ordering, P, Seed) — independent of GOMAXPROCS
	// and repeatable across runs. The RandomOrder shuffle and the
	// randomized samplers draw from independent streams derived from Seed
	// by SplitMix64 over a per-purpose tag, so the vertex order never
	// correlates with the walk (and a future consumer added under a new
	// tag will not perturb existing results).
	Seed int64
}

// Stream tags for splitSeed; each Seed consumer gets its own tag.
const (
	seedPurposeOrder   = 0x4f524452 // "ORDR"
	seedPurposeSampler = 0x53414d50 // "SAMP"
)

// splitSeed derives an independent stream seed from (seed, purpose) with
// the SplitMix64 finalizer over seed ‖ purpose. Feeding the raw Seed to
// both the ordering shuffle and the sampler RNG would correlate the two
// streams (the same source drives which vertices come first and where the
// walk goes); hashing a distinct purpose tag into each consumer breaks the
// coupling while keeping every stream a deterministic function of Seed.
func splitSeed(seed int64, purpose uint64) int64 {
	return int64(graph.SplitMix64(uint64(seed) + purpose*0x9e3779b97f4a7c15))
}

// FilterContext applies a sampling filter to the network. ctx cancels the
// run mid-kernel (sequential filters poll it in their traversal loops;
// parallel filters abort their simulated ranks); a cancelled run returns
// ctx.Err(). A completed run honors the determinism contract documented on
// FilterOptions.Seed.
func FilterContext(ctx context.Context, g *Graph, opts FilterOptions) (*Result, error) {
	ord := graph.Order(g, opts.Ordering, splitSeed(opts.Seed, seedPurposeOrder))
	return sampling.RunContext(ctx, opts.Algorithm, g, sampling.Options{
		Order: ord,
		P:     opts.P,
		Seed:  splitSeed(opts.Seed, seedPurposeSampler),
	})
}

// Filter applies a sampling filter to the network.
//
// Deprecated: use FilterContext, which can be cancelled mid-kernel. Filter
// is FilterContext with context.Background().
func Filter(g *Graph, opts FilterOptions) (*Result, error) {
	return FilterContext(context.Background(), g, opts)
}

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// MaximalChordalSubgraph extracts a maximal chordal subgraph of g under the
// given ordering and returns it as a CSR graph (built directly from the
// DSW edge list; no intermediate edge set is materialized).
func MaximalChordalSubgraph(g *Graph, o Ordering, seed int64) *Graph {
	res := chordal.MaximalSubgraph(g, graph.Order(g, o, seed))
	return res.SubgraphGraph(g.N())
}

// IsChordal reports whether g is a chordal graph.
func IsChordal(g *Graph) bool { return chordal.IsChordal(g) }

// ClustersContext runs MCODE on the network. The zero ClusterParams value
// selects the paper's defaults (score ≥ 3.0, size ≥ 4, haircut on); any
// non-zero value is passed through to the kernel. ctx cancels the run
// mid-pass with ctx.Err().
func ClustersContext(ctx context.Context, g *Graph, p ClusterParams) ([]Cluster, error) {
	if p == (ClusterParams{}) {
		p = mcode.DefaultParams()
	}
	return mcode.FindClustersContext(ctx, g, p)
}

// Clusters runs MCODE with the paper's default parameters (score ≥ 3.0).
//
// Deprecated: use ClustersContext, which can be cancelled and takes
// explicit parameters (pass the zero ClusterParams for these defaults).
func Clusters(g *Graph) []Cluster {
	return mcode.FindClusters(g, mcode.DefaultParams())
}

// ClustersWithParams runs MCODE with explicit parameters.
//
// Deprecated: use ClustersContext. Note the semantic difference for the
// zero value: ClustersWithParams(g, ClusterParams{}) resolves per-field
// kernel defaults with the haircut OFF, while ClustersContext treats the
// zero value as the paper's full default set (haircut on).
func ClustersWithParams(g *Graph, p mcode.Params) []Cluster {
	return mcode.FindClusters(g, p)
}

// ScoreClustersContext annotates clusters against an ontology, producing
// AEES scores (edge enrichment: DCP depth − term breadth, averaged over
// cluster edges). ctx cancels the run between clusters with ctx.Err().
func ScoreClustersContext(ctx context.Context, d *DAG, a *Annotations, g *Graph, clusters []Cluster) ([]ScoredCluster, error) {
	return analysis.ScoreClustersContext(ctx, d, a, g, clusters)
}

// ScoreClusters annotates clusters against an ontology.
//
// Deprecated: use ScoreClustersContext, which can be cancelled.
func ScoreClusters(d *DAG, a *Annotations, g *Graph, clusters []Cluster) []ScoredCluster {
	return analysis.ScoreClusters(d, a, g, clusters)
}

// DefaultNetworkOptions returns the paper's correlation-network
// configuration: Pearson, ρ ≥ 0.95, p ≤ 0.0005.
func DefaultNetworkOptions() NetworkOptions { return expr.DefaultNetworkOptions() }

// BuildCorrelationNetworkContext computes all-pairs correlations (Pearson
// or Spearman per opts.Kind) of the expression matrix on the
// standardized-row engine — every gene row is z-scored once so each pair is
// a single dot product, and the p-value cut is inverted into a critical |r|
// before the tiled parallel sweep — then thresholds them into a network.
// Use DefaultNetworkOptions for the paper's thresholds. ctx cancels the
// sweep at tile claims with ctx.Err().
func BuildCorrelationNetworkContext(ctx context.Context, m *Matrix, opts NetworkOptions) (*Graph, error) {
	return expr.BuildNetworkContext(ctx, m, opts)
}

// BuildCorrelationNetwork builds the thresholded correlation network.
//
// Deprecated: use BuildCorrelationNetworkContext, which can be cancelled
// mid-sweep.
func BuildCorrelationNetwork(m *Matrix, opts NetworkOptions) *Graph {
	return expr.BuildNetwork(m, opts)
}

// CorrelationThresholdSweep sizes the correlation network at each |ρ|
// threshold from one all-pairs pass (the edge-count cliff behind the
// paper's 0.95 choice).
func CorrelationThresholdSweep(m *Matrix, thresholds []float64, opts NetworkOptions) []SweepPoint {
	return expr.ThresholdSweep(m, thresholds, opts)
}

// ------------------------------------------------------------- the pipeline

// PipelineInput is one end-to-end request: a network (or an expression
// matrix to build one from), a filter configuration, and optionally an
// ontology to score clusters against.
type PipelineInput struct {
	// Name uniquely identifies the input data and namespaces its cached
	// artifacts. Two runs against one Pipeline with the same Name are
	// assumed to carry the same Graph/Matrix/DAG/Ann. Required for
	// Pipeline.Run. RunPipeline ignores that contract: it always prefixes
	// Name with a content fingerprint of the data, so one-shot runs on the
	// process-shared engine can never collide however Name is (re)used.
	Name string
	// Graph is the input network. Leave nil to build it from Matrix.
	Graph *Graph
	// Matrix is the expression matrix used when Graph is nil.
	Matrix *Matrix
	// Network configures correlation-network construction from Matrix
	// (NetworkOptions semantics; start from DefaultNetworkOptions for the
	// paper's thresholds).
	Network NetworkOptions
	// Filter selects the sampling algorithm, ordering, processor count and
	// seed. As in Filter, the ordering shuffle and the samplers draw from
	// decorrelated streams derived from Filter.Seed.
	Filter FilterOptions
	// DAG and Ann enable the scoring stage when both are set.
	DAG *DAG
	Ann *Annotations
	// Clusters configures MCODE (zero value: the paper's defaults).
	Clusters ClusterParams
}

// StageTiming is one engine request observed during a pipeline run.
type StageTiming struct {
	// Stage is the stage name: network, order, filter, cluster, score.
	Stage string
	// Variant is "orig" or "ordering/algorithm/P".
	Variant string
	// Source is "computed", "hit", "shared" (joined another request's
	// in-flight computation) or "disk" (loaded from the persistent tier).
	Source string
	// Duration is the request's wall time (≈ 0 for hits).
	Duration time.Duration
}

// PipelineResult is the output of one end-to-end run.
type PipelineResult struct {
	// Network is the input (or built correlation) network.
	Network *Graph
	// Filter is the sampling run, including parallel telemetry.
	Filter *Result
	// Filtered is the sampled subgraph.
	Filtered *Graph
	// Clusters are the MCODE complexes of the filtered network.
	Clusters []Cluster
	// Scored is Clusters scored against the ontology (nil unless DAG and
	// Ann were provided).
	Scored []ScoredCluster
	// Timings lists the engine requests of this run in completion order.
	Timings []StageTiming
}

// PipelineConfig parameterizes a reusable Pipeline.
//
// Deprecated: use New with functional options (WithCacheBytes,
// WithWorkers, WithDatasets).
type PipelineConfig struct {
	// CacheBytes is the artifact-store budget (0: a 256 MiB default).
	CacheBytes int64
	// Workers bounds concurrently executing stage kernels (0: GOMAXPROCS).
	Workers int
}

// Pipeline is the reusable, concurrency-safe form of the end-to-end run: a
// typed stage-graph engine (internal/pipeline) whose artifact store
// memoizes every stage under deterministic keys, deduplicates concurrent
// identical requests (singleflight), and evicts least-recently-used
// artifacts under a byte budget. Many goroutines may call Run (struct
// inputs) or Do (wire-form api.Request) simultaneously; overlapping
// requests share work and cache.
type Pipeline struct {
	eng      *pipeline.Engine
	datasets map[string]bool // WithDatasets restriction; nil serves all
	resolver resolverCache   // api.Request fingerprint → resolved input
}

// New creates a Pipeline. With no options it serves every built-in dataset
// lazily, budgets the artifact store at 256 MiB, and bounds stage kernels
// at GOMAXPROCS:
//
//	p := parsample.New(
//	        parsample.WithCacheBytes(1<<30),
//	        parsample.WithWorkers(8),
//	        parsample.WithDatasets("YNG", "CRE"),
//	)
func New(opts ...Option) *Pipeline {
	var s pipelineSettings
	for _, o := range opts {
		o(&s)
	}
	p := &Pipeline{eng: pipeline.New(pipeline.Config{
		MaxBytes:    s.cacheBytes,
		Workers:     s.workers,
		BatchWindow: s.batchWindow,
		CacheDir:    s.cacheDir,
		DiskBytes:   s.diskCacheBytes,
	})}
	p.resolver.init(resolverCacheCap)
	if s.datasets != nil {
		p.datasets = make(map[string]bool, len(s.datasets))
		for _, n := range s.datasets {
			p.datasets[n] = true
		}
		for n := range p.datasets {
			// Pre-build so the first request doesn't pay synthesis latency.
			if _, ok := p.datasetFor(n); !ok {
				delete(p.datasets, n)
			}
		}
	}
	return p
}

// NewPipeline creates a Pipeline.
//
// Deprecated: use New with WithCacheBytes and WithWorkers.
func NewPipeline(cfg PipelineConfig) *Pipeline {
	return New(WithCacheBytes(cfg.CacheBytes), WithWorkers(cfg.Workers))
}

// Stats returns the artifact-store counters (hits, misses, in-flight joins,
// evictions, resident bytes, and — with WithCacheDir — the disk tier's
// hit/write-behind counters).
func (p *Pipeline) Stats() PipelineStats { return p.eng.Stats() }

// Close flushes the persistent tier's pending write-behind snapshots and
// stops its background writer. A no-op without WithCacheDir; the Pipeline
// remains usable afterwards (artifacts just stop being persisted). Servers
// should call it after draining, so work computed just before a restart is
// disk-warm after it.
func (p *Pipeline) Close() { p.eng.Close() }

// Run executes the pipeline end to end: network → order → filter → cluster
// (→ score when an ontology is present). ctx cancels the run mid-kernel;
// a cancelled run returns ctx.Err(), leaves no partial artifacts in the
// store, and leaks no goroutines.
func (p *Pipeline) Run(ctx context.Context, in PipelineInput) (*PipelineResult, error) {
	if in.Name == "" {
		return nil, fmt.Errorf("parsample: PipelineInput.Name is required (it namespaces cached artifacts)")
	}
	if in.Graph == nil && in.Matrix == nil {
		return nil, fmt.Errorf("parsample: pipeline input %q has neither a network nor a matrix", in.Name)
	}
	pin := pipeline.Input{
		Name:       in.Name,
		G:          in.Graph,
		Matrix:     in.Matrix,
		Net:        in.Network,
		DAG:        in.DAG,
		Ann:        in.Ann,
		MCODE:      in.Clusters,
		OrderSeed:  splitSeed(in.Filter.Seed, seedPurposeOrder),
		FilterSeed: splitSeed(in.Filter.Seed, seedPurposeSampler),
	}
	v := pipeline.Variant{Ordering: in.Filter.Ordering, Algorithm: in.Filter.Algorithm, P: in.Filter.P}
	if v.P < 1 {
		v.P = 1 // normalized so P=0 and P=1 share one cache key
	}
	ctx, trace := pipeline.WithTrace(ctx)
	net, err := p.eng.Network(ctx, pin)
	if err != nil {
		return nil, err
	}
	filt, err := p.eng.Filtered(ctx, pin, v)
	if err != nil {
		return nil, err
	}
	clusters, err := p.eng.Clusters(ctx, pin, v)
	if err != nil {
		return nil, err
	}
	res := &PipelineResult{
		Network:  net,
		Filter:   filt.Result,
		Filtered: filt.Graph,
		Clusters: clusters,
	}
	if in.DAG != nil && in.Ann != nil {
		if res.Scored, err = p.eng.Scored(ctx, pin, v); err != nil {
			return nil, err
		}
	}
	for _, e := range trace.Entries() {
		res.Timings = append(res.Timings, StageTiming{
			Stage:    e.Key.Stage.String(),
			Variant:  e.Key.Variant.String(),
			Source:   e.Source.String(),
			Duration: e.Duration,
		})
	}
	return res, nil
}

// sharedPipeline is the lazily initialized engine behind RunPipeline.
// One-shot runs used to allocate a fresh 256 MiB-budget engine per call;
// sharing one process-wide engine means repeated one-shot runs over the
// same data are warm hits and concurrent identical runs deduplicate. The
// tradeoff: RunPipeline results can now be served from cache, so the
// artifacts of a prior call (bounded by the 256 MiB LRU budget) stay
// resident between calls — byte-identical to a fresh computation, because
// every stage kernel is a pure function of its input data and seeds, with
// inputs namespaced by content fingerprint so distinct data can never
// collide. Callers that want an isolated or differently-budgeted store
// hold their own New() pipeline.
var sharedPipeline = sync.OnceValue(func() *Pipeline { return New() })

// RunPipeline is the one-call end-to-end run:
//
//	res, err := parsample.RunPipeline(ctx, parsample.PipelineInput{
//	        Matrix:  m,
//	        Network: parsample.DefaultNetworkOptions(),
//	        Filter:  parsample.FilterOptions{Algorithm: parsample.ChordalNoComm, Ordering: parsample.HighDegree, P: 8},
//	})
//
// It executes on a lazily initialized, process-shared Pipeline, so
// repeated and concurrent one-shot runs share the artifact store. The
// cache namespace is always derived from a content fingerprint of the
// input data (graph or matrix, plus ontology) — one hash pass over the
// input per call, which is what makes the shared store collision-free: a
// caller-supplied Name is folded into the fingerprint namespace rather
// than trusted alone, so reusing a Name across calls with different data
// (safe under the old fresh-engine-per-call behavior) can never serve the
// wrong artifacts. Callers serving many requests should hold a Pipeline
// from New and call Run or Do directly.
func RunPipeline(ctx context.Context, in PipelineInput) (*PipelineResult, error) {
	if fp := fingerprintInput(&in); in.Name == "" {
		in.Name = fp
	} else {
		in.Name = fp + "/" + in.Name
	}
	return sharedPipeline().Run(ctx, in)
}

// ReadNetwork parses a whitespace edge list (one "u v" pair per line, '#'
// comments, optional "# n m" header).
func ReadNetwork(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteNetwork writes g in the edge-list format accepted by ReadNetwork.
func WriteNetwork(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// DOTOptions configures WriteDOT (graph name, vertex groups to highlight).
type DOTOptions = graph.DOTOptions

// WriteDOT writes g as a Graphviz DOT document.
func WriteDOT(w io.Writer, g *Graph, opts DOTOptions) error { return graph.WriteDOT(w, g, opts) }
