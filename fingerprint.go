package parsample

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"parsample/internal/ontology"
)

// fingerprintInput hashes the input data — graph or matrix, plus ontology —
// into a stable content identity. RunPipeline uses it to namespace cached
// artifacts on the process-shared engine: equal content maps to equal
// names (warm hits), distinct content can never collide (unlike pointer- or
// caller-chosen names). One pass over the data per call; SHA-256 keeps the
// 128-bit truncation safely collision-free.
func fingerprintInput(in *PipelineInput) string {
	h := sha256.New()
	w := bufio.NewWriterSize(h, 1<<16)
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		w.Write(buf[:])
	}
	i64 := func(v int64) { u64(uint64(v)) }
	if g := in.Graph; g != nil {
		w.WriteByte('G')
		i64(int64(g.N()))
		i64(int64(g.M()))
		for v := int32(0); int(v) < g.N(); v++ {
			nbr := g.Neighbors(v)
			i64(int64(len(nbr)))
			for _, u := range nbr {
				u64(uint64(uint32(u)))
			}
		}
	}
	if m := in.Matrix; m != nil {
		w.WriteByte('M')
		i64(int64(m.Genes))
		i64(int64(m.Samples))
		for g := 0; g < m.Genes; g++ {
			for _, x := range m.Row(g) {
				u64(math.Float64bits(x))
			}
		}
	}
	if d := in.DAG; d != nil {
		w.WriteByte('D')
		i64(int64(d.NumTerms()))
		for t := 0; t < d.NumTerms(); t++ {
			ps := d.Parents(ontology.TermID(t))
			i64(int64(len(ps)))
			for _, p := range ps {
				i64(int64(p))
			}
		}
	}
	if a := in.Ann; a != nil {
		w.WriteByte('A')
		i64(int64(a.NumGenes()))
		for g := 0; g < a.NumGenes(); g++ {
			ts := a.Terms(int32(g))
			i64(int64(len(ts)))
			for _, t := range ts {
				i64(int64(t))
			}
		}
	}
	w.Flush()
	sum := h.Sum(nil)
	return "content:" + hex.EncodeToString(sum[:16])
}
