package parsample

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"

	"parsample/api"
	"parsample/internal/graph"
	"parsample/internal/ontology"
)

func synthRequest() *api.Request {
	return &api.Request{
		Network: api.NetworkSource{Synthesis: &api.SynthesisSpec{
			Genes: 192, Samples: 24, Modules: intp(4), ModuleSize: intp(8), Seed: 7,
		}},
		Filter: api.FilterSpec{Algorithm: "chordal-nocomm", Ordering: "HD", P: 4, Seed: 3},
	}
}

func intp(v int) *int { return &v }

func TestDoEndToEnd(t *testing.T) {
	p := New()
	resp, err := p.Do(context.Background(), synthRequest())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Network.Vertices != 192 || resp.Network.Edges == 0 {
		t.Fatalf("network = %+v", resp.Network)
	}
	if resp.Filtered == nil || resp.Filtered.Edges == 0 {
		t.Fatalf("filtered = %+v", resp.Filtered)
	}
	if len(resp.Clusters) == 0 || len(resp.Scores) != len(resp.Clusters) {
		t.Fatalf("clusters = %d, scores = %d", len(resp.Clusters), len(resp.Scores))
	}

	// Warm rerun: byte-identical JSON, no recomputation.
	misses := p.Stats().Misses
	resp2, err := p.Do(context.Background(), synthRequest())
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(resp)
	b2, _ := json.Marshal(resp2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("warm rerun produced different response bytes")
	}
	if after := p.Stats().Misses; after != misses {
		t.Fatalf("warm rerun recomputed %d artifacts", after-misses)
	}
}

func TestDoAlgorithmNoneClustersOriginal(t *testing.T) {
	g := graph.PlantedModules(300, 200, graph.ModuleSpec{
		Count: 5, MinSize: 6, MaxSize: 8, Density: 0.8, NoiseDeg: 0.4, Window: 3,
	}, 13)
	var buf bytes.Buffer
	if err := WriteNetwork(&buf, g.G); err != nil {
		t.Fatal(err)
	}
	req := &api.Request{
		Network: api.NetworkSource{EdgeList: buf.String()},
		Filter:  api.FilterSpec{Algorithm: api.AlgorithmNone},
	}
	resp, err := New().Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Filtered != nil {
		t.Fatalf("algorithm none should omit the filtered section: %+v", resp.Filtered)
	}
	if len(resp.Clusters) == 0 {
		t.Fatal("no clusters on the unfiltered network")
	}
	if resp.Scores != nil {
		t.Fatal("edge list without ontology should not score")
	}
	// Matches the direct kernel path on the same graph.
	direct, err := ClustersContext(context.Background(), g.G, ClusterParams{})
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != len(resp.Clusters) {
		t.Fatalf("Do found %d clusters, direct kernel %d", len(resp.Clusters), len(direct))
	}
}

func TestDoEdgeListWithInlineOntologyAndEdges(t *testing.T) {
	pr := graph.PlantedModules(300, 200, graph.ModuleSpec{
		Count: 5, MinSize: 6, MaxSize: 8, Density: 0.8, NoiseDeg: 0.4, Window: 3,
	}, 17)
	dag := ontology.Generate(ontology.GenerateSpec{Depth: 8, Branch: 3, Seed: 2})
	ann := ontology.AnnotateModules(dag, 300, pr.Modules, 5, 3)
	var net, dagBuf, annBuf bytes.Buffer
	if err := WriteNetwork(&net, pr.G); err != nil {
		t.Fatal(err)
	}
	if err := ontology.WriteDAG(&dagBuf, dag); err != nil {
		t.Fatal(err)
	}
	if err := ontology.WriteAnnotations(&annBuf, ann); err != nil {
		t.Fatal(err)
	}
	req := &api.Request{
		Network: api.NetworkSource{EdgeList: net.String()},
		Filter:  api.FilterSpec{Algorithm: "chordal-seq"},
		Score:   api.ScoreSpec{DAG: dagBuf.String(), Annotations: annBuf.String()},
		Output:  api.OutputSpec{Edges: true},
	}
	resp, err := New().Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Scores) != len(resp.Clusters) || len(resp.Clusters) == 0 {
		t.Fatalf("clusters = %d, scores = %d", len(resp.Clusters), len(resp.Scores))
	}
	if len(resp.Filtered.EdgeList) != resp.Filtered.Edges {
		t.Fatalf("edge list has %d pairs, filtered reports %d", len(resp.Filtered.EdgeList), resp.Filtered.Edges)
	}
	for i := 1; i < len(resp.Filtered.EdgeList); i++ {
		a, b := resp.Filtered.EdgeList[i-1], resp.Filtered.EdgeList[i]
		if a[0] > b[0] || (a[0] == b[0] && a[1] >= b[1]) {
			t.Fatalf("edge list not in canonical order at %d: %v, %v", i, a, b)
		}
	}
}

func TestWithDatasetsRestriction(t *testing.T) {
	p := New(WithDatasets("YNG"))
	if _, err := p.Do(context.Background(), &api.Request{Network: api.NetworkSource{Dataset: "CRE"}}); err == nil {
		t.Fatal("restricted pipeline served CRE")
	} else {
		var ae *api.Error
		if !errors.As(err, &ae) || ae.Code != api.CodeBadRequest {
			t.Fatalf("err = %v, want bad_request", err)
		}
	}
	resp, err := p.Do(context.Background(), &api.Request{
		Network: api.NetworkSource{Dataset: "YNG"},
		Filter:  api.FilterSpec{Algorithm: "chordal-nocomm", Ordering: "HD", P: 8, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Network.Vertices != 5348 {
		t.Fatalf("YNG vertices = %d", resp.Network.Vertices)
	}
	if len(resp.Scores) == 0 {
		t.Fatal("dataset source should score by default")
	}
}

// RunPipeline's shared engine: repeated one-shot runs over the same data
// are warm hits with byte-identical outcomes, and the content fingerprint
// keeps distinct data apart.
func TestRunPipelineSharedEngine(t *testing.T) {
	pr := graph.PlantedModules(400, 300, graph.ModuleSpec{
		Count: 5, MinSize: 6, MaxSize: 8, Density: 0.8, NoiseDeg: 0.5, Window: 3,
	}, 29)
	in := PipelineInput{
		Graph:  pr.G,
		Filter: FilterOptions{Algorithm: ChordalNoComm, Ordering: HighDegree, P: 4, Seed: 9},
	}
	first, err := RunPipeline(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	misses := sharedPipeline().Stats().Misses
	second, err := RunPipeline(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if after := sharedPipeline().Stats().Misses; after != misses {
		t.Fatalf("repeated one-shot run recomputed %d artifacts", after-misses)
	}
	if len(first.Clusters) != len(second.Clusters) || first.Filtered.M() != second.Filtered.M() {
		t.Fatal("repeated one-shot run returned different results")
	}
	for _, tm := range second.Timings {
		if tm.Source != "hit" {
			t.Fatalf("repeated run stage %s/%s came from %s, want hit", tm.Stage, tm.Variant, tm.Source)
		}
	}
}

// Reusing a caller-supplied Name across one-shot runs with different data
// was safe under the old fresh-engine-per-call RunPipeline; the shared
// engine keeps it safe by folding the Name into the content fingerprint.
func TestRunPipelineNameReuseDoesNotCollide(t *testing.T) {
	mk := func(seed int64) *Graph {
		pr := graph.PlantedModules(300, 250, graph.ModuleSpec{
			Count: 4, MinSize: 6, MaxSize: 8, Density: 0.8, NoiseDeg: 0.4, Window: 3,
		}, seed)
		return pr.G
	}
	run := func(g *Graph) *PipelineResult {
		res, err := RunPipeline(context.Background(), PipelineInput{
			Name:   "reused",
			Graph:  g,
			Filter: FilterOptions{Algorithm: ChordalSeq, Ordering: HighDegree, Seed: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(mk(31)), run(mk(32))
	if a.Network.M() == b.Network.M() && a.Filtered.M() == b.Filtered.M() {
		t.Fatal("suspicious: different inputs produced identical outputs (likely a name collision)")
	}
	if b.Filtered.M() == 0 || b.Filtered.M() > b.Network.M() {
		t.Fatalf("second run filtered %d of %d edges", b.Filtered.M(), b.Network.M())
	}
}

func TestDoRejectsOversizedSynthesis(t *testing.T) {
	req := &api.Request{Network: api.NetworkSource{Synthesis: &api.SynthesisSpec{
		Genes: 100_000_000, Samples: 100_000, Seed: 1,
	}}}
	_, err := New().Do(context.Background(), req)
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeBadRequest {
		t.Fatalf("err = %v, want bad_request (dimension cap)", err)
	}
}

// The content fingerprint: equal content (even from a different object)
// maps to one name; any content change maps away.
func TestFingerprintInput(t *testing.T) {
	g1 := graph.Gnm(200, 800, 5)
	g2 := graph.Gnm(200, 800, 5) // same generator, same content, new object
	g3 := graph.Gnm(200, 800, 6)
	f1 := fingerprintInput(&PipelineInput{Graph: g1})
	if f2 := fingerprintInput(&PipelineInput{Graph: g2}); f2 != f1 {
		t.Fatal("equal graph content fingerprinted apart")
	}
	if f3 := fingerprintInput(&PipelineInput{Graph: g3}); f3 == f1 {
		t.Fatal("different graph content collided")
	}
	dag := ontology.Generate(ontology.GenerateSpec{Depth: 6, Branch: 2, Seed: 1})
	withDAG := fingerprintInput(&PipelineInput{Graph: g1, DAG: dag})
	if withDAG == f1 {
		t.Fatal("ontology did not change the fingerprint")
	}
}

func TestParseNames(t *testing.T) {
	for _, name := range api.Algorithms() {
		if name == api.AlgorithmNone {
			continue
		}
		a, ok := ParseAlgorithm(name)
		if !ok || a.String() != name {
			t.Fatalf("ParseAlgorithm(%q) = %v, %v", name, a, ok)
		}
	}
	for _, name := range api.Orderings() {
		o, ok := ParseOrdering(name)
		if !ok || o.String() != name {
			t.Fatalf("ParseOrdering(%q) = %v, %v", name, o, ok)
		}
	}
	if _, ok := ParseAlgorithm("nope"); ok {
		t.Fatal("accepted unknown algorithm")
	}
	if _, ok := ParseOrdering("nope"); ok {
		t.Fatal("accepted unknown ordering")
	}
}
