package parsample

import (
	"container/list"
	"strings"
	"sync"
	"time"

	"context"

	"parsample/api"
	"parsample/internal/expr"
	"parsample/internal/graph"
	"parsample/internal/mcode"
	"parsample/internal/ontology"
	"parsample/internal/pipeline"
	"parsample/internal/sampling"
)

// ParseAlgorithm maps a wire/CLI name (e.g. "chordal-nocomm") to its
// Algorithm. The names are the Algorithm String() forms; see
// api.Algorithms.
func ParseAlgorithm(s string) (Algorithm, bool) {
	for _, a := range sampling.All {
		if a.String() == s {
			return a, true
		}
	}
	return 0, false
}

// ParseOrdering maps a wire/CLI name (NO, HD, LD, RCM, RAND) to its
// Ordering.
func ParseOrdering(s string) (Ordering, bool) {
	for _, o := range append(append([]Ordering(nil), graph.AllOrderings...), RandomOrder) {
		if o.String() == s {
			return o, true
		}
	}
	return 0, false
}

// Do executes one wire-form request end to end on the pipeline: it
// normalizes and validates req (returning an *api.Error with code
// bad_request on schema violations), resolves the network source (cached
// by content fingerprint, so repeated requests skip parsing and
// synthesis), runs the stage graph, and assembles the response. The
// response is a pure function of the normalized request — repeated calls
// return byte-identical JSON — and concurrent identical requests compute
// each stage once (the engine's singleflight). ctx cancels the run
// mid-kernel with ctx.Err(). req is not modified.
func (p *Pipeline) Do(ctx context.Context, req *api.Request) (*api.Response, error) {
	norm, err := req.Normalized()
	if err != nil {
		return nil, err
	}
	ri, err := p.resolve(norm)
	if err != nil {
		return nil, err
	}

	pin := pipeline.Input{
		Name:       ri.name,
		G:          ri.g,
		Matrix:     ri.matrix,
		Net:        netOptionsFrom(norm),
		DAG:        ri.dag,
		Ann:        ri.ann,
		MCODE:      mcodeParamsFrom(norm),
		OrderSeed:  splitSeed(norm.Filter.Seed, seedPurposeOrder),
		FilterSeed: splitSeed(norm.Filter.Seed, seedPurposeSampler),
	}
	v := pipeline.Original
	if norm.Filter.Algorithm != api.AlgorithmNone {
		alg, ok := ParseAlgorithm(norm.Filter.Algorithm)
		if !ok {
			return nil, api.Errorf(api.CodeBadRequest, "unknown algorithm %q", norm.Filter.Algorithm)
		}
		ord, ok := ParseOrdering(norm.Filter.Ordering)
		if !ok {
			return nil, api.Errorf(api.CodeBadRequest, "unknown ordering %q", norm.Filter.Ordering)
		}
		v = pipeline.Variant{Ordering: ord, Algorithm: alg, P: norm.Filter.P}
	}

	net, err := p.eng.Network(ctx, pin)
	if err != nil {
		return nil, err
	}
	resp := &api.Response{
		Version: api.Version,
		Request: norm,
		Network: api.NetworkInfo{Vertices: net.N(), Edges: net.M()},
	}
	if !v.IsOriginal() {
		filt, err := p.eng.Filtered(ctx, pin, v)
		if err != nil {
			return nil, err
		}
		fi := &api.FilteredInfo{
			Edges:       filt.Graph.M(),
			BorderEdges: filt.Result.BorderEdges,
			Duplicates:  filt.Result.DuplicateBorderEdges,
		}
		if norm.Output.Edges {
			fi.EdgeList = edgePairs(filt.Graph)
		}
		resp.Filtered = fi
	}
	clusters, err := p.eng.Clusters(ctx, pin, v)
	if err != nil {
		return nil, err
	}
	resp.Clusters = make([]api.Cluster, 0, len(clusters))
	for _, c := range clusters {
		resp.Clusters = append(resp.Clusters, api.Cluster{
			ID:       c.ID,
			Vertices: c.Vertices,
			Edges:    c.Edges,
			Density:  c.Density,
			Score:    c.Score,
		})
	}
	if *norm.Score.Enabled {
		scored, err := p.eng.Scored(ctx, pin, v)
		if err != nil {
			return nil, err
		}
		resp.Scores = make([]api.ClusterScore, 0, len(scored))
		for _, sc := range scored {
			resp.Scores = append(resp.Scores, api.ClusterScore{
				ClusterID:     sc.Cluster.ID,
				AEES:          sc.Score.AEES,
				MaxEdgeScore:  sc.Score.MaxEdgeScore,
				DominantTerm:  int(sc.Score.DominantTerm),
				DominantCount: sc.Score.DominantCount,
				Edges:         sc.Score.Edges,
			})
		}
	}
	return resp, nil
}

// edgePairs lists g's edges as (u, v) pairs with u < v, in CSR
// (lexicographic) order.
func edgePairs(g *graph.Graph) [][2]int32 {
	out := make([][2]int32, 0, g.M())
	for u := int32(0); int(u) < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				out = append(out, [2]int32{u, v})
			}
		}
	}
	return out
}

// NetworkFromSource materializes a request's network source as a Graph:
// inline edge lists are parsed, dataset names resolved, synthesized
// matrices built into correlation networks. File-driven CLIs (netstat,
// clusters) use it so every front end shares one source grammar.
func (p *Pipeline) NetworkFromSource(ctx context.Context, src api.NetworkSource) (*Graph, error) {
	norm, err := (&api.Request{Network: src}).Normalized()
	if err != nil {
		return nil, err
	}
	ri, err := p.resolve(norm)
	if err != nil {
		return nil, err
	}
	if ri.g != nil {
		return ri.g, nil
	}
	return p.eng.Network(ctx, pipeline.Input{Name: ri.name, Matrix: ri.matrix, Net: netOptionsFrom(norm)})
}

// ------------------------------------------------------------ resolution

// resolvedInput is a materialized network source: the data a pipeline.Input
// carries, keyed by the request fingerprint. It is pure data — correlation
// options are per-request run parameters (netOptionsFrom), NOT part of the
// resolved source, so requests that differ only in thresholds or precision
// share one entry (and one synthesized matrix) here.
type resolvedInput struct {
	name   string
	g      *graph.Graph
	matrix *expr.Matrix
	dag    *ontology.DAG
	ann    *ontology.Annotations
}

// netOptionsFrom maps a normalized request's correlation spec onto engine
// options. Matrix-less sources have no correlation stage; the zero value
// is returned and ignored downstream.
func netOptionsFrom(norm *api.Request) expr.NetworkOptions {
	c := norm.Network.Correlation
	if c == nil {
		return expr.NetworkOptions{}
	}
	kind := expr.PearsonCorr
	if c.Statistic == "spearman" {
		kind = expr.SpearmanCorr
	}
	prec := expr.Float64
	if c.Precision == "float32" {
		prec = expr.Float32
	}
	return expr.NetworkOptions{Kind: kind, MinAbsR: *c.MinAbsR, MaxP: *c.MaxP, Negative: c.Negative, Precision: prec}
}

// mcodeParamsFrom maps a normalized request's cluster spec onto MCODE
// kernel parameters.
func mcodeParamsFrom(norm *api.Request) mcode.Params {
	return mcode.Params{
		VertexWeightPercentage: *norm.Cluster.VertexWeightPct,
		Haircut:                *norm.Cluster.Haircut,
		MinScore:               *norm.Cluster.MinScore,
		MinSize:                *norm.Cluster.MinSize,
		Fluff:                  norm.Cluster.Fluff,
		FluffDensityThreshold:  *norm.Cluster.FluffDensityThreshold,
	}
}

// Resident reports whether req's expensive artifacts are already warm in
// this Pipeline: the source is resolved (parsed or synthesized) and — for
// matrix-backed sources, whose dominant cost is the O(genes²·samples)
// correlation sweep — the network artifact is resident in the engine
// store. The serving tier's admission gate uses this to discount the cost
// of warm repeats and, under degradation, to shed cold synthesis work
// before cached work. The probe is read-only: it touches neither the
// resolver's nor the store's LRU order and materializes nothing. A false
// from a malformed request is fine — admission re-validates via Do.
func (p *Pipeline) Resident(req *api.Request) bool {
	norm, err := req.Normalized()
	if err != nil {
		return false
	}
	fp := norm.Fingerprint()
	if !p.resolver.contains(fp) {
		return false
	}
	if norm.Network.Synthesis == nil {
		// Graph-backed sources: the parse/dataset build is the cost; once
		// resolved the network stage is a cheap pass-through.
		return true
	}
	return p.eng.NetworkResident(pipeline.Input{
		Name:       fp,
		Net:        netOptionsFrom(norm),
		MCODE:      mcodeParamsFrom(norm),
		OrderSeed:  splitSeed(norm.Filter.Seed, seedPurposeOrder),
		FilterSeed: splitSeed(norm.Filter.Seed, seedPurposeSampler),
	})
}

// BatchWindow returns the engine's current cross-request sweep-batch
// window.
func (p *Pipeline) BatchWindow() time.Duration { return p.eng.BatchWindow() }

// SetBatchWindow atomically adjusts the sweep-batch window at runtime.
// The serving tier widens it under sustained load (more coalescing, less
// kernel work per admitted request) and restores it when pressure drops;
// in-flight batches keep the window they opened with.
func (p *Pipeline) SetBatchWindow(d time.Duration) { p.eng.SetBatchWindow(d) }

// resolve materializes the normalized request's source, serving repeats
// from the fingerprint-keyed LRU (concurrent identical resolutions
// deduplicate like the engine's singleflight).
func (p *Pipeline) resolve(norm *api.Request) (*resolvedInput, error) {
	key := norm.Fingerprint()
	return p.resolver.do(key, func() (*resolvedInput, error) {
		return p.materialize(key, norm)
	})
}

// materialize builds the resolved input for one source (the cache-miss
// path of resolve).
func (p *Pipeline) materialize(key string, norm *api.Request) (*resolvedInput, error) {
	ri := &resolvedInput{name: key}
	switch {
	case norm.Network.Dataset != "":
		ds, ok := p.datasetFor(norm.Network.Dataset)
		if !ok {
			return nil, api.Errorf(api.CodeBadRequest, "dataset %q is not served by this pipeline (have %s)",
				norm.Network.Dataset, p.servedDatasets())
		}
		ri.g, ri.dag, ri.ann = ds.G, ds.DAG, ds.Ann
	case norm.Network.EdgeList != "":
		g, err := graph.ReadEdgeList(strings.NewReader(norm.Network.EdgeList))
		if err != nil {
			return nil, api.Errorf(api.CodeBadRequest, "edge list: %v", err)
		}
		ri.g = g
		if norm.Score.DAG != "" {
			dag, err := ontology.ReadDAG(strings.NewReader(norm.Score.DAG))
			if err != nil {
				return nil, api.Errorf(api.CodeBadRequest, "ontology dag: %v", err)
			}
			ann, err := ontology.ReadAnnotations(strings.NewReader(norm.Score.Annotations))
			if err != nil {
				return nil, api.Errorf(api.CodeBadRequest, "annotations: %v", err)
			}
			if ann.NumGenes() < g.N() {
				return nil, api.Errorf(api.CodeBadRequest, "annotations cover %d genes but the network has %d", ann.NumGenes(), g.N())
			}
			ri.dag, ri.ann = dag, ann
		}
	default: // synthesis (Normalized guarantees exactly one source)
		s := norm.Network.Synthesis
		syn, err := expr.Synthesize(expr.SyntheticSpec{
			Genes:      s.Genes,
			Samples:    s.Samples,
			Modules:    *s.Modules,
			ModuleSize: *s.ModuleSize,
			Noise:      *s.Noise,
			Seed:       s.Seed,
		})
		if err != nil {
			return nil, api.Errorf(api.CodeBadRequest, "synthesize: %v", err)
		}
		ri.matrix = syn.M
		if *s.Ontology {
			// A matching ontology over the planted modules, so scoring has
			// ground truth (same derivation as internal/datasets and the
			// `parsample pipeline -synth` front end: decorrelated seeds for
			// DAG shape and annotation placement).
			ri.dag = ontology.Generate(ontology.GenerateSpec{Depth: 10, Branch: 3, Seed: s.Seed + 1})
			ri.ann = ontology.AnnotateModules(ri.dag, s.Genes, syn.Modules, 6, s.Seed+2)
		}
	}
	return ri, nil
}

// ------------------------------------------------------- resolver cache

// resolverCacheCap bounds resolved sources held by one Pipeline. Resolved
// inputs pin real memory (graphs, matrices, ontologies) outside the
// engine's byte budget, so the cap is an entry count, LRU-evicted; an
// evicted source is simply re-parsed or re-synthesized on its next use.
const resolverCacheCap = 64

// resolverCache is an LRU of fingerprint → resolved source with in-flight
// deduplication: concurrent requests for one fingerprint materialize it
// once and share the result. Errors are returned to every waiter but never
// cached (a transient failure should not poison the key).
type resolverCache struct {
	mu       sync.Mutex
	cap      int
	entries  map[string]*list.Element
	lru      *list.List // front = most recent *resolverEntry
	inflight map[string]*resolverFlight
}

type resolverEntry struct {
	key string
	val *resolvedInput
}

type resolverFlight struct {
	done chan struct{}
	val  *resolvedInput
	err  error
}

func (c *resolverCache) init(capacity int) {
	c.cap = capacity
	c.entries = make(map[string]*list.Element)
	c.lru = list.New()
	c.inflight = make(map[string]*resolverFlight)
}

// contains reports whether key is resolved and resident, without touching
// LRU order (a residency probe must not keep cold entries warm).
func (c *resolverCache) contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

func (c *resolverCache) do(key string, compute func() (*resolvedInput, error)) (*resolvedInput, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		v := el.Value.(*resolverEntry).val
		c.mu.Unlock()
		return v, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-f.done
		return f.val, f.err
	}
	f := &resolverFlight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	f.val, f.err = compute()
	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		c.entries[key] = c.lru.PushFront(&resolverEntry{key: key, val: f.val})
		for c.lru.Len() > c.cap {
			el := c.lru.Back()
			c.lru.Remove(el)
			delete(c.entries, el.Value.(*resolverEntry).key)
		}
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, f.err
}
