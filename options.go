package parsample

import (
	"sort"
	"strings"
	"time"

	"parsample/internal/datasets"
)

// Option configures a Pipeline built by New. Options replace the older
// PipelineConfig struct: they compose, read at call sites, and leave the
// zero configuration unambiguous (every omitted option selects a documented
// default).
type Option func(*pipelineSettings)

// pipelineSettings is the resolved configuration behind New.
type pipelineSettings struct {
	cacheBytes     int64
	workers        int
	datasets       []string // nil: every built-in dataset is served
	batchWindow    time.Duration
	cacheDir       string
	diskCacheBytes int64
}

// WithCacheBytes sets the artifact-store byte budget. The default (0 or
// omitted) is pipeline.DefaultStoreBytes, 256 MiB.
func WithCacheBytes(n int64) Option {
	return func(s *pipelineSettings) { s.cacheBytes = n }
}

// WithWorkers bounds concurrently executing stage kernels across all
// requests. The default (0 or omitted) is GOMAXPROCS. Worker count never
// changes results — only how many stage kernels run at once.
func WithWorkers(n int) Option {
	return func(s *pipelineSettings) { s.workers = n }
}

// WithBatchWindow holds each matrix-backed network build open for d so
// concurrent requests over the same data that differ only in correlation
// parameters (thresholds, p-cut, sign gate) ride ONE batched sweep instead
// of paying a full O(genes²) pass each. Responses are byte-identical with
// or without batching; the window only trades up to d of added cold-build
// latency for shared kernel work under concurrent load. The default (0 or
// omitted) disables coalescing; servers typically want a few milliseconds
// (parsampled's -batch-window defaults to 2ms).
func WithBatchWindow(d time.Duration) Option {
	return func(s *pipelineSettings) { s.batchWindow = d }
}

// WithCacheDir enables the persistent artifact tier: expensive stage
// artifacts (correlation networks, filtered subgraphs, cluster sets) are
// snapshotted to content-addressed blobs under dir and served back —
// checksum-verified — on later misses, so they survive process restarts.
// Any number of pipelines and processes may share one directory; snapshot
// publication is atomic, and replicas sharing a directory share their warm
// sets (DESIGN.md §10). New panics if dir cannot be created; callers
// surfacing configuration errors gracefully should ensure the directory
// exists first (os.MkdirAll), after which New cannot fail. The default
// (omitted or empty) keeps artifacts in memory only.
func WithCacheDir(dir string) Option {
	return func(s *pipelineSettings) { s.cacheDir = dir }
}

// WithDiskCacheBytes bounds the persistent tier's directory usage;
// least-recently-accessed snapshots are pruned beyond it. The default (0
// or omitted) is 1 GiB. Only meaningful with WithCacheDir.
func WithDiskCacheBytes(n int64) Option {
	return func(s *pipelineSettings) { s.diskCacheBytes = n }
}

// WithDatasets restricts which built-in evaluation datasets (YNG, MID,
// UNT, CRE) the pipeline serves to api.Request dataset sources, and
// pre-builds them at New time so the first request doesn't pay synthesis
// latency. Unknown names are ignored. Without this option every dataset is
// available, built lazily on first use.
func WithDatasets(names ...string) Option {
	return func(s *pipelineSettings) { s.datasets = append(s.datasets, names...) }
}

// datasetFor resolves a named evaluation dataset, honoring the
// WithDatasets restriction. The bool is false when the name is unknown or
// not served by this pipeline.
func (p *Pipeline) datasetFor(name string) (*datasets.Dataset, bool) {
	if p.datasets != nil && !p.datasets[name] {
		return nil, false
	}
	switch name {
	case "YNG":
		return datasets.YNG(), true
	case "MID":
		return datasets.MID(), true
	case "UNT":
		return datasets.UNT(), true
	case "CRE":
		return datasets.CRE(), true
	}
	return nil, false
}

// servedDatasets names the datasets this pipeline serves, sorted, for error
// messages.
func (p *Pipeline) servedDatasets() string {
	if p.datasets == nil {
		return "YNG, MID, UNT, CRE"
	}
	names := make([]string, 0, len(p.datasets))
	for n := range p.datasets {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
