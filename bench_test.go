package parsample

// One benchmark per table/figure of the paper's evaluation. Each benchmark
// regenerates the corresponding figure's data through the drivers in
// internal/experiments; run with
//
//	go test -bench=Fig -benchmem .
//
// The benchmarked quantity is the wall time to reproduce the figure on this
// machine; the figures' own content (who wins, by what factor) is asserted
// by the tests in internal/experiments.

import (
	"context"
	"fmt"
	"testing"

	"parsample/internal/chordal"
	"parsample/internal/datasets"
	"parsample/internal/experiments"
	"parsample/internal/expr"
	"parsample/internal/graph"
	"parsample/internal/mcode"
	"parsample/internal/pipeline"
	"parsample/internal/sampling"
)

// BenchmarkFig04AEESByOrdering regenerates Figure 4 (AEES per cluster across
// the ORIG/HD/LD/NO/RCM variants of YNG and MID).
func BenchmarkFig04AEESByOrdering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig4(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig05Overlap regenerates Figure 5 (node/edge overlap scatter,
// original vs sampled, for UNT and CRE plus newly discovered clusters).
func BenchmarkFig05Overlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig5(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkFig06NodeOverlapAEES regenerates Figure 6 (node overlap vs AEES,
// all networks).
func BenchmarkFig06NodeOverlapAEES(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if pts, err := experiments.Fig6(context.Background()); err != nil || len(pts) == 0 {
			b.Fatalf("pts=%d err=%v", len(pts), err)
		}
	}
}

// BenchmarkFig07EdgeOverlapAEES regenerates Figure 7 (edge overlap vs AEES).
func BenchmarkFig07EdgeOverlapAEES(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if pts, err := experiments.Fig7(context.Background()); err != nil || len(pts) == 0 {
			b.Fatalf("pts=%d err=%v", len(pts), err)
		}
	}
}

// BenchmarkFig08SensSpec regenerates Figure 8 (sensitivity/specificity of
// node- vs edge-overlap cluster matching).
func BenchmarkFig08SensSpec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8(context.Background())
		if err != nil || len(rows) != 2 {
			b.Fatalf("rows=%d err=%v", len(rows), err)
		}
	}
}

// BenchmarkFig09CaseStudy regenerates Figure 9 (the filtering case study:
// the cluster whose AEES improves most under the chordal filter).
func BenchmarkFig09CaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10Scalability regenerates Figure 10 (execution time vs
// processor count for the three parallel sampling algorithms on YNG and
// CRE).
func BenchmarkFig10Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkScalingSweep runs the generalized scalability study (the
// `experiments -fig scaling` sweep) on its small and synthetic inputs —
// YNG plus the Gnm/R-MAT stress generators — across the full processor
// range. This is the runtime's end-to-end stress: every point exercises
// the progress engine, virtual clocks and the Gatherv merge.
func BenchmarkScalingSweep(b *testing.B) {
	cfg := experiments.DefaultScalingConfig()
	// Drop CRE (the big network) so the bench stays minutes-not-hours at
	// high -benchtime; `-fig scaling` still covers it.
	nets := cfg.Networks[:0:0]
	for _, n := range cfg.Networks {
		if n.Name != "CRE" {
			nets = append(nets, n)
		}
	}
	cfg.Networks = nets
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Scaling(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig11ParallelQuality regenerates Figure 11 (CRE natural order:
// 1P vs 64P cluster overlap and top clusters).
func BenchmarkFig11ParallelQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig11(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRandomWalkControl regenerates the Section IV.B text result (the
// random-walk control filter finds essentially no clusters).
func BenchmarkRandomWalkControl(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RandomWalkClusters(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------- pipeline

// BenchmarkPipelineEndToEnd runs the full YNG chain — ordering, chordal
// filter, MCODE, AEES scoring, original-vs-filtered matching — through the
// pipeline engine, cold (fresh engine per iteration: every stage computes)
// vs warm (shared engine: every stage is a store hit). The warm/cold ratio
// is the cache-regression signal; warm must stay orders of magnitude below
// cold (acceptance bar: ≥5×).
func BenchmarkPipelineEndToEnd(b *testing.B) {
	ds := datasets.YNG()
	in := pipeline.FromDataset(ds)
	v := pipeline.Variant{Ordering: graph.HighDegree, Algorithm: sampling.ChordalSeq, P: 1}
	run := func(b *testing.B, e *pipeline.Engine) {
		ms, err := e.Matches(context.Background(), in, v)
		if err != nil {
			b.Fatal(err)
		}
		if len(ms) == 0 {
			b.Fatal("no matches")
		}
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			run(b, pipeline.New(pipeline.Config{}))
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		e := pipeline.New(pipeline.Config{})
		run(b, e) // prime the store outside the timer
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b, e)
		}
	})
}

// --------------------------------------------------------------- ablations

// BenchmarkAblationSamplersYNG times the raw filters on the small network
// (wall clock, not the Figure 10 cost model).
func BenchmarkAblationSamplersYNG(b *testing.B) {
	ds := datasets.YNG()
	ord := graph.Order(ds.G, graph.Natural, ds.Seed)
	for _, alg := range []sampling.Algorithm{
		sampling.ChordalSeq, sampling.ChordalComm, sampling.ChordalNoComm, sampling.RandomWalkSeq,
	} {
		b.Run(alg.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sampling.Run(alg, ds.G, sampling.Options{Order: ord, P: 8, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationWallClockParallel measures the real goroutine speedup of
// the communication-free filter on the large network (the harness's actual
// parallelism, complementing the modeled cluster times of Figure 10).
func BenchmarkAblationWallClockParallel(b *testing.B) {
	ds := datasets.CRE()
	ord := graph.Order(ds.G, graph.Natural, ds.Seed)
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sampling.Run(sampling.ChordalNoComm, ds.G, sampling.Options{Order: ord, P: p}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLostFoundClusters regenerates the Section IV.A lost/found table.
func BenchmarkLostFoundClusters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows, err := experiments.LostFound(context.Background()); err != nil || len(rows) == 0 {
			b.Fatalf("rows=%d err=%v", len(rows), err)
		}
	}
}

// BenchmarkAblationCliqueRetention regenerates the H0 clique-retention study.
func BenchmarkAblationCliqueRetention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CliqueRetentionStudy(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationHubPreservation regenerates the centrality-preservation
// extension table (hub survival per filter).
func BenchmarkAblationHubPreservation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.HubPreservation(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBorderRule regenerates the border-admission ablation
// (triangle rule vs coin flip).
func BenchmarkAblationBorderRule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BorderRuleAblation(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------- substrate micro-benchmarks
//
// These track the CSR/bitset core across PRs (BENCH_*.json): adjacency
// probes, bitset intersection, and the DSW + MCODE kernels on the two
// generator families (Erdős–Rényi via Gnm, power-law via RMAT).

// benchGraphs returns the generator graphs the substrate benchmarks run on.
func benchGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"ER":   graph.Gnm(8192, 65536, 1),
		"RMAT": graph.RMAT(13, 8, 0, 0, 0, 2),
	}
}

// BenchmarkHasEdge measures adjacency probes on the CSR rows (binary/linear
// search) and on the dense bitset rows, over a fixed random query mix.
func BenchmarkHasEdge(b *testing.B) {
	for name, g := range benchGraphs() {
		n := int32(g.N())
		queries := make([][2]int32, 4096)
		rngState := uint64(12345)
		next := func() int32 {
			rngState = rngState*6364136223846793005 + 1442695040888963407
			return int32((rngState >> 33) % uint64(n))
		}
		for i := range queries {
			u, v := next(), next()
			if u == v {
				v = (v + 1) % n
			}
			queries[i] = [2]int32{u, v}
		}
		b.Run(name+"/csr", func(b *testing.B) {
			hits := 0
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				if g.HasEdgeFast(q[0], q[1]) {
					hits++
				}
			}
			_ = hits
		})
		g.EnsureDense()
		b.Run(name+"/dense", func(b *testing.B) {
			hits := 0
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				if g.HasEdgeFast(q[0], q[1]) {
					hits++
				}
			}
			_ = hits
		})
	}
}

// BenchmarkBitsetIntersect measures the word-parallel intersection popcount
// used by the clique checks (8192-bit universes, one-third occupancy).
func BenchmarkBitsetIntersect(b *testing.B) {
	x := graph.NewBitset(8192)
	y := graph.NewBitset(8192)
	for i := int32(0); i < 8192; i += 3 {
		x.Set(i)
	}
	for i := int32(0); i < 8192; i += 5 {
		y.Set(i)
	}
	b.Run("AndCount", func(b *testing.B) {
		total := 0
		for i := 0; i < b.N; i++ {
			total += x.AndCount(y)
		}
		_ = total
	})
	b.Run("SubsetOf", func(b *testing.B) {
		hits := 0
		for i := 0; i < b.N; i++ {
			if x.SubsetOf(y) {
				hits++
			}
		}
		_ = hits
	})
}

// BenchmarkChordalMaximalSubgraph times the DSW kernel on the generator
// graphs — the acceptance metric for the CSR/bitset refactor.
func BenchmarkChordalMaximalSubgraph(b *testing.B) {
	for name, g := range benchGraphs() {
		ord := graph.Order(g, graph.Natural, 0)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if res := chordal.MaximalSubgraph(g, ord); res.Edges.Len() == 0 {
					b.Fatal("empty chordal subgraph")
				}
			}
		})
	}
}

// BenchmarkMCODEClusters times MCODE complex prediction on the generator
// graphs (vertex weighting dominates).
func BenchmarkMCODEClusters(b *testing.B) {
	for name, g := range benchGraphs() {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mcode.FindClusters(g, mcode.DefaultParams())
			}
		})
	}
}

// BenchmarkBuildNetwork times the correlation front end — the z-scored,
// register-blocked all-pairs engine behind expr.BuildNetwork — for both
// statistics and both arena precisions on the two reference matrix shapes.
// The 4096×100 Pearson cases are the acceptance metric for the vectorized
// kernels (float64 ≥2×, float32 ≥3× over the PR-2 scalar engine); float32
// changes only the prefilter arena, never the edge set, so every variant
// here must produce the same graph.
func BenchmarkBuildNetwork(b *testing.B) {
	for _, shape := range []struct{ genes, samples int }{
		{2048, 64},
		{4096, 100},
	} {
		res, err := expr.Synthesize(expr.SyntheticSpec{
			Genes: shape.genes, Samples: shape.samples,
			Modules: 16, ModuleSize: 12, Noise: 0.1, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, kind := range []expr.CorrelationKind{expr.PearsonCorr, expr.SpearmanCorr} {
			for _, prec := range []expr.Precision{expr.Float64, expr.Float32} {
				opts := expr.DefaultNetworkOptions()
				opts.Kind = kind
				opts.Precision = prec
				b.Run(fmt.Sprintf("%s/%s/%dx%d", kind, prec, shape.genes, shape.samples), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if g := expr.BuildNetwork(res.M, opts); g.M() == 0 {
							b.Fatal("empty network")
						}
					}
				})
			}
		}
	}
}

// BenchmarkBuildNetworkBatchedSweep measures the cross-request batching
// economics: one batched pass answering k=4 admission specs versus the
// single-spec pass it generalizes. The acceptance bar is batched(k=4) <
// 1.3× single — the standardization, tiling and candidate prefilter are
// shared, so extra specs only pay per-admitted-pair threshold tests.
func BenchmarkBuildNetworkBatchedSweep(b *testing.B) {
	res, err := expr.Synthesize(expr.SyntheticSpec{
		Genes: 2048, Samples: 64, Modules: 16, ModuleSize: 12, Noise: 0.1, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	base := expr.DefaultNetworkOptions()
	specs := []expr.SweepSpec{
		{MinAbsR: 0.95, MaxP: 0.0005},
		{MinAbsR: 0.90, MaxP: 0.001},
		{MinAbsR: 0.85, MaxP: 0.005},
		{MinAbsR: 0.80, MaxP: 0.01, Negative: true},
	}
	for _, k := range []int{1, 4} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				gs, err := expr.BatchBuildNetworksContext(context.Background(), res.M, base, specs[:k])
				if err != nil {
					b.Fatal(err)
				}
				if gs[0].M() == 0 {
					b.Fatal("empty network")
				}
			}
		})
	}
}

// BenchmarkBuilderAddEdges compares bulk edge staging (the engine's path
// into graph.Builder) against per-edge AddEdge calls.
func BenchmarkBuilderAddEdges(b *testing.B) {
	const n = 1 << 14
	edges := make([]graph.Edge, 1<<18)
	rngState := uint64(99)
	next := func() int32 {
		rngState = rngState*6364136223846793005 + 1442695040888963407
		return int32((rngState >> 33) % n)
	}
	for i := range edges {
		u, v := next(), next()
		if u == v {
			v = (v + 1) % n
		}
		edges[i] = graph.Edge{U: u, V: v}
	}
	b.Run("AddEdge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bl := graph.NewBuilder(n)
			for _, e := range edges {
				bl.AddEdge(e.U, e.V)
			}
		}
	})
	b.Run("AddEdges", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bl := graph.NewBuilder(n)
			bl.AddEdges(edges)
		}
	})
}

// BenchmarkAblationOrderings times the sequential chordal filter under each
// vertex ordering on YNG (orderings change the subgraph, not the asymptotics).
func BenchmarkAblationOrderings(b *testing.B) {
	ds := datasets.YNG()
	for _, o := range graph.AllOrderings {
		ord := graph.Order(ds.G, o, ds.Seed)
		b.Run(o.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sampling.Run(sampling.ChordalSeq, ds.G, sampling.Options{Order: ord}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
