package parsample

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"parsample/internal/expr"
	"parsample/internal/graph"
	"parsample/internal/mcode"
	"parsample/internal/ontology"
)

func TestFacadeFilterAndClusters(t *testing.T) {
	pr := graph.PlantedModules(400, 300, graph.ModuleSpec{
		Count: 5, MinSize: 6, MaxSize: 8, Density: 0.8, NoiseDeg: 0.5, Window: 3,
	}, 11)
	res, err := Filter(pr.G, FilterOptions{Algorithm: ChordalNoComm, Ordering: HighDegree, P: 4})
	if err != nil {
		t.Fatal(err)
	}
	fg := res.Graph(pr.G.N())
	if fg.M() == 0 || fg.M() > pr.G.M() {
		t.Fatalf("filtered edges = %d of %d", fg.M(), pr.G.M())
	}
	clusters := Clusters(fg)
	if len(clusters) == 0 {
		t.Fatal("no clusters after filtering planted modules")
	}
}

func TestFacadeSeedStreamsIndependent(t *testing.T) {
	g := graph.Gnm(200, 800, 5)
	run := func(seed int64) *Result {
		res, err := Filter(g, FilterOptions{Algorithm: RandomWalkPar, Ordering: RandomOrder, P: 4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Determinism contract: same options, same result.
	a, b := run(42), run(42)
	if a.Edges.Len() != b.Edges.Len() {
		t.Fatal("same seed produced different samples")
	}
	a.Edges.ForEach(func(u, v int32) {
		if !b.Edges.Has(u, v) {
			t.Fatal("same seed produced different edges")
		}
	})
	// Independent streams: the shuffle and the walk must not collapse onto
	// the same underlying sequence. With the raw seed feeding both, the
	// derived sub-seeds would be equal; SplitMix64 over distinct purpose
	// tags keeps them apart for every seed.
	for _, seed := range []int64{0, 1, -7, 1 << 40} {
		if splitSeed(seed, seedPurposeOrder) == splitSeed(seed, seedPurposeSampler) {
			t.Fatalf("seed %d: order and sampler streams coincide", seed)
		}
	}
	// And a different seed changes the outcome.
	c := run(43)
	same := c.Edges.Len() == a.Edges.Len()
	if same {
		a.Edges.ForEach(func(u, v int32) {
			if !c.Edges.Has(u, v) {
				same = false
			}
		})
	}
	if same {
		t.Fatal("different seeds gave identical samples (suspicious)")
	}
}

func TestFacadeChordalHelpers(t *testing.T) {
	g := graph.Cycle(9)
	sub := MaximalChordalSubgraph(g, Natural, 0)
	if !IsChordal(sub) {
		t.Fatal("maximal chordal subgraph is not chordal")
	}
	if IsChordal(g) {
		t.Fatal("C9 misclassified as chordal")
	}
	if sub.M() != 8 {
		t.Fatalf("C9 chordal subgraph edges = %d, want 8", sub.M())
	}
}

func TestFacadeNetworkIO(t *testing.T) {
	g := graph.Gnm(30, 60, 1)
	var buf bytes.Buffer
	if err := WriteNetwork(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatal("network IO round trip failed")
	}
}

func TestFacadeEndToEndPipeline(t *testing.T) {
	// Microarray → correlation network → filter → clusters → AEES.
	syn, err := expr.Synthesize(expr.SyntheticSpec{
		Genes: 150, Samples: 30, Modules: 3, ModuleSize: 8, Noise: 0.1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	net := BuildCorrelationNetwork(syn.M, expr.DefaultNetworkOptions())
	res, err := Filter(net, FilterOptions{Algorithm: ChordalSeq})
	if err != nil {
		t.Fatal(err)
	}
	fg := res.Graph(net.N())
	clusters := ClustersWithParams(fg, mcode.Params{MinScore: 3, MinSize: 4})
	if len(clusters) == 0 {
		t.Fatal("pipeline found no clusters")
	}
	dag := ontology.Generate(ontology.GenerateSpec{Depth: 8, Branch: 3, Seed: 2})
	ann := ontology.AnnotateModules(dag, 150, syn.Modules, 6, 3)
	scored := ScoreClusters(dag, ann, fg, clusters)
	foundRelevant := false
	for _, sc := range scored {
		if sc.Score.AEES >= 3 {
			foundRelevant = true
		}
	}
	if !foundRelevant {
		t.Fatal("no biologically relevant cluster in end-to-end pipeline")
	}
}

// ------------------------------------------------------------- the pipeline

// RunPipeline executes the end-to-end chain from a synthesized matrix:
// correlation network, filter, clusters, scores, and stage timings.
func TestRunPipelineEndToEnd(t *testing.T) {
	syn, err := expr.Synthesize(expr.SyntheticSpec{
		Genes: 512, Samples: 48, Modules: 8, ModuleSize: 10, Noise: 0.1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	dag := ontology.Generate(ontology.GenerateSpec{Depth: 8, Branch: 3, Seed: 4})
	ann := ontology.AnnotateModules(dag, 512, syn.Modules, 5, 5)
	res, err := RunPipeline(context.Background(), PipelineInput{
		Matrix:  syn.M,
		Network: DefaultNetworkOptions(),
		Filter:  FilterOptions{Algorithm: ChordalNoComm, Ordering: HighDegree, P: 4, Seed: 3},
		DAG:     dag,
		Ann:     ann,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Network.M() == 0 {
		t.Fatal("empty correlation network")
	}
	if res.Filtered.M() == 0 || res.Filtered.M() > res.Network.M() {
		t.Fatalf("filtered edges = %d of %d", res.Filtered.M(), res.Network.M())
	}
	if len(res.Clusters) == 0 || len(res.Scored) != len(res.Clusters) {
		t.Fatalf("clusters = %d, scored = %d", len(res.Clusters), len(res.Scored))
	}
	stages := map[string]bool{}
	for _, tm := range res.Timings {
		stages[tm.Stage] = true
	}
	for _, s := range []string{"network", "order", "filter", "cluster", "score"} {
		if !stages[s] {
			t.Fatalf("stage %s missing from timings: %+v", s, res.Timings)
		}
	}
}

// A reusable Pipeline shares artifacts across runs: the second identical
// run is served entirely from the store, and differently-parameterized runs
// share the stages they have in common (the network and its ordering).
func TestPipelineReuseSharesArtifacts(t *testing.T) {
	pr := graph.PlantedModules(500, 900, graph.ModuleSpec{
		Count: 8, MinSize: 6, MaxSize: 8, Density: 0.7, NoiseDeg: 0.5, Window: 3,
	}, 21)
	p := NewPipeline(PipelineConfig{})
	in := PipelineInput{
		Name:   "planted",
		Graph:  pr.G,
		Filter: FilterOptions{Algorithm: ChordalSeq, Ordering: HighDegree, P: 1, Seed: 9},
	}
	first, err := p.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	misses := p.Stats().Misses
	second, err := p.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if after := p.Stats().Misses; after != misses {
		t.Fatalf("identical rerun recomputed %d artifacts", after-misses)
	}
	if len(first.Clusters) != len(second.Clusters) {
		t.Fatal("rerun returned different clusters")
	}
	for _, tm := range second.Timings {
		if tm.Source != "hit" {
			t.Fatalf("rerun stage %s/%s came from %s, want hit", tm.Stage, tm.Variant, tm.Source)
		}
	}
	// Same ordering, different processor count: the order artifact is shared.
	in.Filter.P = 4
	in.Filter.Algorithm = ChordalNoComm
	third, err := p.Run(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if third.Filtered.M() == 0 {
		t.Fatal("empty filtered graph")
	}
	for _, tm := range third.Timings {
		if tm.Stage == "order" && tm.Source != "hit" {
			t.Fatalf("order stage recomputed on a shared network: %+v", tm)
		}
	}
}

// Cancelling a pipeline run returns ctx.Err() promptly. The cancel delay
// is scaled down from a measured uncancelled run and retried on a fresh
// engine per attempt (RunPipeline now shares a process-wide store, which
// would serve later attempts warm and outrun any cancel), so the test
// cannot race the kernel on fast many-core machines.
func TestPipelineCancellation(t *testing.T) {
	syn, err := expr.Synthesize(expr.SyntheticSpec{
		Genes: 4096, Samples: 100, Modules: 8, ModuleSize: 10, Noise: 0.1, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := PipelineInput{
		Name:    "cancel",
		Matrix:  syn.M,
		Network: DefaultNetworkOptions(),
		Filter:  FilterOptions{Algorithm: ChordalSeq, Seed: 6},
	}
	start := time.Now()
	if _, err := New().Run(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	cold := time.Since(start)
	if cold < time.Millisecond {
		cold = time.Millisecond
	}
	for div := time.Duration(4); div <= 256; div *= 2 {
		ctx, cancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(cold/div, cancel)
		done := make(chan error, 1)
		go func() {
			_, err := New().Run(ctx, in)
			done <- err
		}()
		select {
		case err := <-done:
			timer.Stop()
			cancel()
			if errors.Is(err, context.Canceled) {
				return // cancellation landed mid-run and returned promptly
			}
			if err != nil {
				t.Fatalf("err = %v, want nil or context.Canceled", err)
			}
			// The run outran this delay; retry with a shorter one.
		case <-time.After(4*cold + 5*time.Second):
			t.Fatal("cancelled pipeline run did not return promptly")
		}
	}
	t.Fatal("could not land a cancellation mid-run")
}
