package parsample

import (
	"bytes"
	"testing"

	"parsample/internal/expr"
	"parsample/internal/graph"
	"parsample/internal/mcode"
	"parsample/internal/ontology"
)

func TestFacadeFilterAndClusters(t *testing.T) {
	pr := graph.PlantedModules(400, 300, graph.ModuleSpec{
		Count: 5, MinSize: 6, MaxSize: 8, Density: 0.8, NoiseDeg: 0.5, Window: 3,
	}, 11)
	res, err := Filter(pr.G, FilterOptions{Algorithm: ChordalNoComm, Ordering: HighDegree, P: 4})
	if err != nil {
		t.Fatal(err)
	}
	fg := res.Graph(pr.G.N())
	if fg.M() == 0 || fg.M() > pr.G.M() {
		t.Fatalf("filtered edges = %d of %d", fg.M(), pr.G.M())
	}
	clusters := Clusters(fg)
	if len(clusters) == 0 {
		t.Fatal("no clusters after filtering planted modules")
	}
}

func TestFacadeSeedStreamsIndependent(t *testing.T) {
	g := graph.Gnm(200, 800, 5)
	run := func(seed int64) *Result {
		res, err := Filter(g, FilterOptions{Algorithm: RandomWalkPar, Ordering: RandomOrder, P: 4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Determinism contract: same options, same result.
	a, b := run(42), run(42)
	if a.Edges.Len() != b.Edges.Len() {
		t.Fatal("same seed produced different samples")
	}
	a.Edges.ForEach(func(u, v int32) {
		if !b.Edges.Has(u, v) {
			t.Fatal("same seed produced different edges")
		}
	})
	// Independent streams: the shuffle and the walk must not collapse onto
	// the same underlying sequence. With the raw seed feeding both, the
	// derived sub-seeds would be equal; SplitMix64 over distinct purpose
	// tags keeps them apart for every seed.
	for _, seed := range []int64{0, 1, -7, 1 << 40} {
		if splitSeed(seed, seedPurposeOrder) == splitSeed(seed, seedPurposeSampler) {
			t.Fatalf("seed %d: order and sampler streams coincide", seed)
		}
	}
	// And a different seed changes the outcome.
	c := run(43)
	same := c.Edges.Len() == a.Edges.Len()
	if same {
		a.Edges.ForEach(func(u, v int32) {
			if !c.Edges.Has(u, v) {
				same = false
			}
		})
	}
	if same {
		t.Fatal("different seeds gave identical samples (suspicious)")
	}
}

func TestFacadeChordalHelpers(t *testing.T) {
	g := graph.Cycle(9)
	sub := MaximalChordalSubgraph(g, Natural, 0)
	if !IsChordal(sub) {
		t.Fatal("maximal chordal subgraph is not chordal")
	}
	if IsChordal(g) {
		t.Fatal("C9 misclassified as chordal")
	}
	if sub.M() != 8 {
		t.Fatalf("C9 chordal subgraph edges = %d, want 8", sub.M())
	}
}

func TestFacadeNetworkIO(t *testing.T) {
	g := graph.Gnm(30, 60, 1)
	var buf bytes.Buffer
	if err := WriteNetwork(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatal("network IO round trip failed")
	}
}

func TestFacadeEndToEndPipeline(t *testing.T) {
	// Microarray → correlation network → filter → clusters → AEES.
	syn, err := expr.Synthesize(expr.SyntheticSpec{
		Genes: 150, Samples: 30, Modules: 3, ModuleSize: 8, Noise: 0.1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	net := BuildCorrelationNetwork(syn.M, expr.DefaultNetworkOptions())
	res, err := Filter(net, FilterOptions{Algorithm: ChordalSeq})
	if err != nil {
		t.Fatal(err)
	}
	fg := res.Graph(net.N())
	clusters := ClustersWithParams(fg, mcode.Params{MinScore: 3, MinSize: 4})
	if len(clusters) == 0 {
		t.Fatal("pipeline found no clusters")
	}
	dag := ontology.Generate(ontology.GenerateSpec{Depth: 8, Branch: 3, Seed: 2})
	ann := ontology.AnnotateModules(dag, 150, syn.Modules, 6, 3)
	scored := ScoreClusters(dag, ann, fg, clusters)
	foundRelevant := false
	for _, sc := range scored {
		if sc.Score.AEES >= 3 {
			foundRelevant = true
		}
	}
	if !foundRelevant {
		t.Fatal("no biologically relevant cluster in end-to-end pipeline")
	}
}
