// Scalability: run the paper's Figure 10 processor sweep — generalized to
// P ∈ {1..64} × vertex orderings × parallel samplers over the synthetic GSE
// networks plus Gnm/R-MAT stress inputs — on the simulated MPI runtime, and
// print the modeled cluster execution times, speedups and efficiency, plus
// this machine's wall-clock time for each goroutine run.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"parsample/internal/experiments"
	"parsample/internal/graph"
	"parsample/internal/sampling"
)

func main() {
	cfg := experiments.DefaultScalingConfig()

	// The full sweep table, exactly what `experiments -fig scaling` prints.
	rows, err := experiments.Scaling(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	experiments.WriteScaling(os.Stdout, rows)

	// Modeled vs actual: one series re-run with wall-clock timing, to make
	// the point that the modeled seconds are cluster time, not the time the
	// goroutine simulation takes on this machine.
	net := cfg.Networks[0]
	fmt.Printf("\n%s, natural order, chordal-nocomm: modeled cluster time vs this machine\n", net.Name)
	fmt.Printf("%4s  %12s  %10s\n", "P", "modeled(s)", "wall(ms)")
	ord := graph.Order(net.G, graph.Natural, net.Seed)
	for _, p := range cfg.Processors {
		t0 := time.Now()
		res, err := sampling.Run(sampling.ChordalNoComm, net.G, sampling.Options{
			Order: ord, P: p, Seed: net.Seed, Model: &cfg.Model,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d  %12.4f  %10.2f\n",
			p, cfg.Model.Time(&res.Stats), float64(time.Since(t0).Microseconds())/1000)
	}
}
