// Scalability: sweep processor counts for the three parallel sampling
// algorithms on the paper's two representative networks (YNG small, CRE
// large) and print both the modeled cluster execution time (Figure 10) and
// this machine's wall-clock time for the goroutine implementation.
package main

import (
	"fmt"
	"log"
	"time"

	"parsample/internal/datasets"
	"parsample/internal/experiments"
	"parsample/internal/graph"
	"parsample/internal/sampling"
)

func main() {
	model := experiments.Fig10CostModel()
	algs := []sampling.Algorithm{
		sampling.ChordalComm, sampling.ChordalNoComm, sampling.RandomWalkPar,
	}
	for _, ds := range []*datasets.Dataset{datasets.YNG(), datasets.CRE()} {
		fmt.Printf("\n%s: %d vertices, %d edges\n", ds.Name, ds.G.N(), ds.G.M())
		fmt.Printf("%-16s %4s  %12s  %10s  %8s  %8s\n",
			"algorithm", "P", "modeled(s)", "wall(ms)", "msgs", "edges")
		ord := graph.Order(ds.G, graph.Natural, ds.Seed)
		for _, alg := range algs {
			for _, p := range experiments.Fig10Processors {
				t0 := time.Now()
				res, err := sampling.Run(alg, ds.G, sampling.Options{Order: ord, P: p, Seed: ds.Seed})
				if err != nil {
					log.Fatal(err)
				}
				wall := time.Since(t0)
				fmt.Printf("%-16s %4d  %12.4f  %10.2f  %8d  %8d\n",
					alg, p, model.Time(&res.Stats), float64(wall.Microseconds())/1000,
					res.Stats.Messages, res.Edges.Len())
			}
		}
	}
	fmt.Println("\nmodeled(s): distributed-memory cluster time from the Figure 10 cost model")
	fmt.Println("wall(ms):   actual goroutine wall time on this machine")
}
