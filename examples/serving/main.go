// Serving: the v1 service API end to end in one process — a parsampled
// daemon over a shared pipeline, a synchronous request repeated to show
// the artifact store turning a cold run into a microsecond warm hit, and
// an async job followed over its SSE progress stream.
//
// In production the daemon runs standalone (`parsampled -addr :8080`, or
// `parsample serve`) and clients speak plain HTTP/JSON; this example wires
// the same pieces through httptest so it runs hermetically.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"parsample"
	"parsample/api"
	"parsample/internal/server"
)

func main() {
	// One shared pipeline behind the HTTP tier: every request funnels into
	// the same memoizing store.
	p := parsample.New(parsample.WithCacheBytes(128 << 20))
	ts := httptest.NewServer(server.New(server.Config{Pipeline: p}))
	defer ts.Close()

	reqBody := `{
		"network": {"synthesis": {"genes": 512, "samples": 48, "modules": 8, "moduleSize": 10, "seed": 3}},
		"filter": {"algorithm": "chordal-nocomm", "ordering": "HD", "p": 4, "seed": 3}
	}`

	// Synchronous run, twice: the second is served from cache.
	for _, label := range []string{"cold", "warm"} {
		start := time.Now()
		resp, err := http.Post(ts.URL+"/v1/pipeline", "application/json", strings.NewReader(reqBody))
		if err != nil {
			log.Fatal(err)
		}
		var r api.Response
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		fmt.Printf("%s run: %v  cache=%s  network %d/%d  filtered %d  clusters %d  scored %d\n",
			label, time.Since(start).Round(time.Microsecond), resp.Header.Get(server.CacheHeader),
			r.Network.Vertices, r.Network.Edges, r.Filtered.Edges, len(r.Clusters), len(r.Scores))
	}

	// Async job with a different variant (shares the network and its
	// ordering artifacts with the runs above), followed over SSE.
	jobBody := strings.Replace(reqBody, `"p": 4`, `"p": 16`, 1)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(jobBody))
	if err != nil {
		log.Fatal(err)
	}
	var ji struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ji); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("submitted %s, streaming events:\n", ji.ID)

	ev, err := http.Get(ts.URL + "/v1/jobs/" + ji.ID + "/events")
	if err != nil {
		log.Fatal(err)
	}
	defer ev.Body.Close()
	sc := bufio.NewScanner(ev.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		fmt.Printf("  %s\n", strings.TrimPrefix(line, "data: "))
		if strings.Contains(line, `"done"`) {
			break
		}
	}

	var stats struct {
		Store parsample.PipelineStats `json:"store"`
	}
	sresp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		log.Fatal(err)
	}
	json.NewDecoder(sresp.Body).Decode(&stats)
	sresp.Body.Close()
	fmt.Printf("store: %d misses, %d hits, %d shared, %d entries, %d KiB resident\n",
		stats.Store.Misses, stats.Store.Hits, stats.Store.Shared,
		stats.Store.Entries, stats.Store.BytesUsed>>10)
}
