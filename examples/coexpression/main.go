// Coexpression: the paper's full pipeline end to end on synthetic
// microarray data — expression matrix → Pearson correlation network
// (ρ ≥ 0.95, p ≤ 0.0005) → chordal filter → MCODE clusters → GO edge
// enrichment (AEES) validation.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"parsample"

	"parsample/internal/expr"
	"parsample/internal/ontology"
)

func main() {
	ctx := context.Background()
	// Synthetic microarray: 800 genes × 30 arrays, six planted
	// co-expression modules of 9 genes driven by shared latent profiles.
	syn, err := expr.Synthesize(expr.SyntheticSpec{
		Genes: 800, Samples: 30, Modules: 6, ModuleSize: 9, Noise: 0.08, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Correlation network with the paper's thresholds (Pearson, ρ ≥ 0.95,
	// p ≤ 0.0005). DefaultNetworkOptions returns exactly that
	// configuration; set the fields explicitly to deviate — zero values
	// are honored (MinAbsR: 0 disables the correlation floor, MaxP: 0
	// keeps only perfect correlations), negative values mean "default".
	opts := parsample.DefaultNetworkOptions()
	start := time.Now()
	net, err := parsample.BuildCorrelationNetworkContext(ctx, syn.M, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("correlation network: %d genes, %d edges at rho>=0.95, p<=5e-4 (built in %v)\n",
		net.N(), net.M(), time.Since(start).Round(time.Millisecond))

	// The same engine runs Spearman rank correlation (robust to outliers):
	// rows are rank-transformed once and go through the identical z-scored
	// dot-product sweep.
	opts.Kind = parsample.SpearmanCorr
	start = time.Now()
	rankNet, err := parsample.BuildCorrelationNetworkContext(ctx, syn.M, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spearman network:    %d genes, %d edges at the same thresholds (built in %v)\n",
		rankNet.N(), rankNet.M(), time.Since(start).Round(time.Millisecond))

	// Chordal filter.
	res, err := parsample.FilterContext(ctx, net, parsample.FilterOptions{
		Algorithm: parsample.ChordalSeq,
		Ordering:  parsample.HighDegree,
	})
	if err != nil {
		log.Fatal(err)
	}
	filtered := res.Graph(net.N())
	fmt.Printf("chordal filter: kept %d/%d edges\n", filtered.M(), net.M())
	if filtered.M() == net.M() {
		// Section III: "Ideally, if the data is noise free, no reduction
		// should occur." At these stringent thresholds the synthetic
		// network is almost pure module signal.
		fmt.Println("(no reduction: the thresholded network is essentially noise-free)")
	}

	// Cluster and validate against a GO-like ontology in which the planted
	// modules share deep terms.
	clusters, err := parsample.ClustersContext(ctx, filtered, parsample.ClusterParams{})
	if err != nil {
		log.Fatal(err)
	}
	dag := ontology.Generate(ontology.GenerateSpec{Depth: 10, Branch: 3, Seed: 9})
	ann := ontology.AnnotateModules(dag, 800, syn.Modules, 7, 11)
	scored, err := parsample.ScoreClustersContext(ctx, dag, ann, filtered, clusters)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("clusters: %d\n", len(scored))
	relevant := 0
	for _, sc := range scored {
		tag := ""
		if sc.Score.AEES >= 3 {
			tag = "  <- biologically relevant"
			relevant++
		}
		fmt.Printf("  cluster %-2d size %-2d edges %-3d AEES %5.2f dominant GO term %d%s\n",
			sc.Cluster.ID, len(sc.Cluster.Vertices), sc.Score.Edges, sc.Score.AEES,
			sc.Score.DominantTerm, tag)
	}
	fmt.Printf("%d/%d clusters clear the paper's AEES >= 3.0 bar\n", relevant, len(scored))
}
