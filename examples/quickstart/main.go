// Quickstart: build a small noisy network with planted modules, filter it
// with the maximal chordal subgraph sampler, and compare the clusters found
// before and after filtering.
package main

import (
	"context"
	"fmt"
	"log"

	"parsample"

	"parsample/internal/graph"
)

func main() {
	ctx := context.Background()
	// A small synthetic correlation network: 500 genes, sparse noisy
	// background, five planted co-expression modules.
	pr := graph.PlantedModules(500, 400, graph.ModuleSpec{
		Count: 5, MinSize: 6, MaxSize: 9, Density: 0.75, NoiseDeg: 0.5, Window: 3,
	}, 42)
	g := pr.G
	fmt.Printf("network: %d vertices, %d edges, %d planted modules\n",
		g.N(), g.M(), len(pr.Modules))

	// Clusters in the raw network (zero ClusterParams: the paper's MCODE
	// defaults).
	before, err := parsample.ClustersContext(ctx, g, parsample.ClusterParams{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clusters before filtering: %d\n", len(before))

	// Chordal filter (communication-free parallel variant on 4 simulated
	// processors, high-degree ordering).
	res, err := parsample.FilterContext(ctx, g, parsample.FilterOptions{
		Algorithm: parsample.ChordalNoComm,
		Ordering:  parsample.HighDegree,
		P:         4,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	filtered := res.Graph(g.N())
	fmt.Printf("chordal filter kept %d of %d edges (%.0f%%), %d border edges\n",
		filtered.M(), g.M(), 100*float64(filtered.M())/float64(g.M()), res.BorderEdges)

	// Clusters in the filtered network.
	after, err := parsample.ClustersContext(ctx, filtered, parsample.ClusterParams{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clusters after filtering: %d\n", len(after))
	for _, c := range after {
		fmt.Printf("  cluster %d: %d vertices, density %.2f, score %.2f\n",
			c.ID, len(c.Vertices), c.Density, c.Score)
	}

	// Sanity: the filtered graph is chordal when run sequentially.
	seq := parsample.MaximalChordalSubgraph(g, parsample.HighDegree, 1)
	fmt.Printf("sequential subgraph chordal: %v\n", parsample.IsChordal(seq))
}
