// Orderings: the paper's H0b study — how the vertex processing order
// (Natural, High Degree, Low Degree, RCM) perturbs the maximal chordal
// subgraph and, more importantly, how little it perturbs the biologically
// relevant clusters.
package main

import (
	"context"
	"fmt"
	"log"

	"parsample"

	"parsample/internal/analysis"
	"parsample/internal/datasets"
	"parsample/internal/graph"
)

func main() {
	ctx := context.Background()
	ds := datasets.YNG()
	fmt.Printf("network %s: %d vertices, %d edges, %d planted modules\n",
		ds.Name, ds.G.N(), ds.G.M(), len(ds.Modules))

	origClusters, err := parsample.ClustersContext(ctx, ds.G, parsample.ClusterParams{})
	if err != nil {
		log.Fatal(err)
	}
	origScored, err := parsample.ScoreClustersContext(ctx, ds.DAG, ds.Ann, ds.G, origClusters)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original network: %d clusters\n\n", len(origClusters))

	fmt.Printf("%-8s %10s %10s %12s %14s %16s\n",
		"ordering", "edges", "clusters", "AEES>=3", "module recall", "best node ovl")
	for _, o := range graph.AllOrderings {
		res, err := parsample.FilterContext(ctx, ds.G, parsample.FilterOptions{
			Algorithm: parsample.ChordalSeq,
			Ordering:  o,
			Seed:      ds.Seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		fg := res.Graph(ds.G.N())
		clusters, err := parsample.ClustersContext(ctx, fg, parsample.ClusterParams{})
		if err != nil {
			log.Fatal(err)
		}
		scored, err := parsample.ScoreClustersContext(ctx, ds.DAG, ds.Ann, fg, clusters)
		if err != nil {
			log.Fatal(err)
		}

		relevant := 0
		for _, sc := range scored {
			if sc.Score.AEES >= 3 {
				relevant++
			}
		}
		recall := analysis.ModuleRecovery(ds.Modules, clusters, 0.5)
		best := 0.0
		for _, m := range analysis.MatchClusters(ds.G, origScored, fg, scored) {
			if m.Overlap.NodeFrac > best {
				best = m.Overlap.NodeFrac
			}
		}
		fmt.Printf("%-8s %10d %10d %12d %13.0f%% %15.0f%%\n",
			o, fg.M(), len(clusters), relevant, 100*recall, 100*best)
	}
	fmt.Println("\nH0b: the chordal subgraph changes with the ordering, but the")
	fmt.Println("biologically relevant clusters are consistently identified.")
}
