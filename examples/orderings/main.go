// Orderings: the paper's H0b study — how the vertex processing order
// (Natural, High Degree, Low Degree, RCM) perturbs the maximal chordal
// subgraph and, more importantly, how little it perturbs the biologically
// relevant clusters.
package main

import (
	"fmt"
	"log"

	"parsample"

	"parsample/internal/analysis"
	"parsample/internal/datasets"
	"parsample/internal/graph"
)

func main() {
	ds := datasets.YNG()
	fmt.Printf("network %s: %d vertices, %d edges, %d planted modules\n",
		ds.Name, ds.G.N(), ds.G.M(), len(ds.Modules))

	origClusters := parsample.Clusters(ds.G)
	origScored := parsample.ScoreClusters(ds.DAG, ds.Ann, ds.G, origClusters)
	fmt.Printf("original network: %d clusters\n\n", len(origClusters))

	fmt.Printf("%-8s %10s %10s %12s %14s %16s\n",
		"ordering", "edges", "clusters", "AEES>=3", "module recall", "best node ovl")
	for _, o := range graph.AllOrderings {
		res, err := parsample.Filter(ds.G, parsample.FilterOptions{
			Algorithm: parsample.ChordalSeq,
			Ordering:  o,
			Seed:      ds.Seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		fg := res.Graph(ds.G.N())
		clusters := parsample.Clusters(fg)
		scored := parsample.ScoreClusters(ds.DAG, ds.Ann, fg, clusters)

		relevant := 0
		for _, sc := range scored {
			if sc.Score.AEES >= 3 {
				relevant++
			}
		}
		recall := analysis.ModuleRecovery(ds.Modules, clusters, 0.5)
		best := 0.0
		for _, m := range analysis.MatchClusters(ds.G, origScored, fg, scored) {
			if m.Overlap.NodeFrac > best {
				best = m.Overlap.NodeFrac
			}
		}
		fmt.Printf("%-8s %10d %10d %12d %13.0f%% %15.0f%%\n",
			o, fg.M(), len(clusters), relevant, 100*recall, 100*best)
	}
	fmt.Println("\nH0b: the chordal subgraph changes with the ordering, but the")
	fmt.Println("biologically relevant clusters are consistently identified.")
}
