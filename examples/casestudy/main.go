// Casestudy: the paper's Figure 9 mechanism, end to end — a co-expression
// module polluted by a clump of mutually correlated noise genes. MCODE on
// the raw network absorbs the clump into the module's cluster and the
// cluster's AEES collapses; the chordal filter cuts the clump's anchor edges
// (they sit on chordless cycles), the clump falls away, and the cluster's
// true function stands out.
package main

import (
	"context"
	"fmt"
	"log"

	"parsample"

	"parsample/internal/analysis"
	"parsample/internal/graph"
	"parsample/internal/ontology"
)

func main() {
	ctx := context.Background()
	// One module of 8 genes plus heavy clumpy noise, in a small network so
	// the effect is visible gene by gene.
	pr := graph.PlantedModules(300, 260, graph.ModuleSpec{
		Count: 4, MinSize: 7, MaxSize: 9, Density: 0.6,
		NoiseDeg: 0.5, NoiseClumps: 2, Window: 3,
	}, 5)
	g := pr.G
	dag := ontology.Generate(ontology.GenerateSpec{Depth: 10, Branch: 3, Seed: 2})
	ann := ontology.AnnotateModules(dag, g.N(), pr.Modules, 8, 3)

	origClusters, err := parsample.ClustersContext(ctx, g, parsample.ClusterParams{})
	if err != nil {
		log.Fatal(err)
	}
	origScored, err := parsample.ScoreClustersContext(ctx, dag, ann, g, origClusters)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original network: %d vertices, %d edges, %d clusters\n", g.N(), g.M(), len(origClusters))
	for _, sc := range origScored {
		fmt.Printf("  cluster %-2d size %-3d AEES %6.2f\n",
			sc.Cluster.ID, len(sc.Cluster.Vertices), sc.Score.AEES)
	}

	res, err := parsample.FilterContext(ctx, g, parsample.FilterOptions{
		Algorithm: parsample.ChordalSeq,
		Ordering:  parsample.HighDegree,
	})
	if err != nil {
		log.Fatal(err)
	}
	fg := res.Graph(g.N())
	filtClusters, err := parsample.ClustersContext(ctx, fg, parsample.ClusterParams{})
	if err != nil {
		log.Fatal(err)
	}
	filtScored, err := parsample.ScoreClustersContext(ctx, dag, ann, fg, filtClusters)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchordal filtered: %d edges kept, %d clusters\n", fg.M(), len(filtClusters))
	for _, sc := range filtScored {
		fmt.Printf("  cluster %-2d size %-3d AEES %6.2f\n",
			sc.Cluster.ID, len(sc.Cluster.Vertices), sc.Score.AEES)
	}

	// Match filtered clusters back to originals and report the best AEES
	// improvement — the Figure 9 case study.
	matches := analysis.MatchClusters(g, origScored, fg, filtScored)
	bestGain := 0.0
	var best analysis.Match
	for _, m := range matches {
		if m.OriginalID < 0 || m.Overlap.NodeFrac < 0.25 {
			continue
		}
		gain := filtScored[m.FilteredID].Score.AEES - origScored[m.OriginalID].Score.AEES
		if gain > bestGain {
			bestGain, best = gain, m
		}
	}
	if bestGain == 0 {
		fmt.Println("\nno improving cluster pair in this instance (try another seed)")
		return
	}
	o := origScored[best.OriginalID]
	f := filtScored[best.FilteredID]
	fmt.Printf("\ncase study (cf. paper Fig 9, apoptosis cluster 2.33 -> 4.17):\n")
	fmt.Printf("  original cluster %d: size %d, AEES %.2f\n",
		o.Cluster.ID, len(o.Cluster.Vertices), o.Score.AEES)
	fmt.Printf("  filtered cluster %d: size %d, AEES %.2f (gain %+.2f)\n",
		f.Cluster.ID, len(f.Cluster.Vertices), f.Score.AEES, bestGain)
	fmt.Printf("  node overlap %.0f%%, edge overlap %.0f%%\n",
		100*best.Overlap.NodeFrac, 100*best.Overlap.EdgeFrac)

	// Show which genes the filter removed from the cluster and their
	// annotation depth — the "no apoptotic function" genes of the paper.
	fset := f.Cluster.NodeSet()
	fmt.Println("  genes removed from the cluster by filtering:")
	for _, v := range o.Cluster.Vertices {
		if !fset[v] {
			depth := -1
			for _, t := range ann.Terms(v) {
				if d := dag.Depth(t); d > depth {
					depth = d
				}
			}
			fmt.Printf("    gene %-5d deepest annotation depth %d\n", v, depth)
		}
	}
}
